"""Unified scenario description shared by every runner in the repo.

Three runners grew three overlapping config dataclasses:

* :class:`~repro.harness.experiment.ExperimentConfig` — response-time
  experiments (``repro run`` / figures / sweeps);
* :class:`~repro.chaos.campaign.ChaosRunConfig` — randomized fault
  campaigns (``repro chaos``);
* :class:`~repro.mc.runner.McRunConfig` — controlled-schedule model
  checking (``repro explore``).

They agree on a core of *scenario* fields (protocol, seed, topology
size, workload shape, lease parameters) and differ only in
runner-specific knobs (fault horizons, deferral quanta, warm-up ops).
:class:`ScenarioConfig` owns that shared core once, with explicit
converters — ``to_experiment()`` / ``to_chaos()`` / ``to_mc()`` — whose
keyword overrides reach every runner-specific field of the legacy
configs.  The legacy constructors keep working unchanged; internally
``McRunConfig`` now derives its validation config through this module
instead of hand-copying fields (the old private
``McRunConfig._chaos_config`` duplication).

Unset semantics
---------------
A field left at :data:`UNSET` means "use the target config's own
default", which differs per runner (e.g. ``num_edges`` defaults to 9
for experiments, 3 for chaos, 2 for mc).  ``None`` is therefore
preserved as a *real* value where the legacy configs use it (e.g.
``client_max_attempts=None`` = retry forever).

Sweep-cache note
----------------
The legacy dataclasses keep their exact fields, so
:func:`repro.harness.sweeps.point_key` inputs are unchanged; cache keys
also include :func:`~repro.harness.sweeps.code_version`, which hashes
every source file, so introducing this module invalidates old cache
entries exactly once — the "bump deliberately" option of the redesign.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Optional

__all__ = ["UNSET", "ScenarioConfig"]


class _Unset:
    """Sentinel: 'use the target config's own default'."""

    _instance: Optional["_Unset"] = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNSET"

    def __bool__(self) -> bool:
        return False


UNSET = _Unset()

#: the shared scenario fields, in declaration order
SHARED_FIELDS = (
    "protocol",
    "seed",
    "weaken",
    "num_edges",
    "num_clients",
    "ops_per_client",
    "write_ratio",
    "num_keys",
    "lease_length_ms",
    "max_drift",
    "jitter_ms",
    "client_max_attempts",
    "time_limit_ms",
)


@dataclass(frozen=True)
class ScenarioConfig:
    """The scenario core common to experiments, chaos runs, and mc runs.

    Fields with concrete defaults (``protocol``, ``seed``, ``weaken``)
    agree across all three legacy configs; everything else defaults to
    :data:`UNSET` and falls back to the target runner's own default on
    conversion.
    """

    protocol: str = "dqvl"
    seed: int = 0
    #: named bug injection from :mod:`repro.chaos.weaken` ('' = healthy)
    weaken: str = ""
    num_edges: Any = UNSET
    num_clients: Any = UNSET
    ops_per_client: Any = UNSET
    write_ratio: Any = UNSET
    num_keys: Any = UNSET
    lease_length_ms: Any = UNSET
    max_drift: Any = UNSET
    jitter_ms: Any = UNSET
    client_max_attempts: Any = UNSET
    time_limit_ms: Any = UNSET
    #: adaptive resilience layer (failure detectors, hedged QRPCs,
    #: degraded-mode front ends); chaos + experiment runners only
    resilience: Any = UNSET
    #: QRPC retransmission schedule override (DQVL-family protocols);
    #: unset = derive from the topology's delay distribution
    qrpc_initial_timeout_ms: Any = UNSET
    qrpc_max_timeout_ms: Any = UNSET
    #: declarative IQS/OQS quorum shapes (DQVL-family protocols);
    #: accepts spec strings, JSON dicts, or QuorumSpec objects and
    #: normalises to the canonical string form (e.g. ``"grid:3x3"``,
    #: ``"majority:r=2,w=4"``) so the frozen scenario stays hashable
    iqs_spec: Any = UNSET
    oqs_spec: Any = UNSET

    def __post_init__(self) -> None:
        from .quorum.spec import QuorumSpec

        for name in ("iqs_spec", "oqs_spec"):
            value = getattr(self, name)
            if value is None:
                # ``None`` is every runner config's own "default shape"
                object.__setattr__(self, name, UNSET)
            elif value is not UNSET:
                object.__setattr__(self, name, str(QuorumSpec.parse(value)))

    # -- extraction --------------------------------------------------------

    def _set_kwargs(self, *names: str) -> dict:
        """The named fields that are actually set (not UNSET)."""
        out = {}
        for name in names:
            value = getattr(self, name)
            if value is not UNSET:
                out[name] = value
        return out

    @classmethod
    def _from_obj(cls, obj: Any) -> "ScenarioConfig":
        kwargs = {}
        for f in fields(cls):
            if hasattr(obj, f.name):
                kwargs[f.name] = getattr(obj, f.name)
        return cls(**kwargs)

    @classmethod
    def from_experiment(cls, config: Any) -> "ScenarioConfig":
        """Extract the shared core of an :class:`ExperimentConfig`."""
        return cls._from_obj(config)

    @classmethod
    def from_chaos(cls, config: Any) -> "ScenarioConfig":
        """Extract the shared core of a :class:`ChaosRunConfig`."""
        return cls._from_obj(config)

    @classmethod
    def from_mc(cls, config: Any) -> "ScenarioConfig":
        """Extract the shared core of an :class:`McRunConfig`."""
        return cls._from_obj(config)

    # -- conversion --------------------------------------------------------

    def to_chaos(self, **overrides: Any):
        """Build a :class:`~repro.chaos.campaign.ChaosRunConfig`.

        Runner-specific fields (``nemeses``, ``horizon_ms``,
        ``sample_interval_ms``, ``trace``) are reachable through
        *overrides*; explicit overrides also win over scenario fields.
        """
        from .chaos.campaign import ChaosRunConfig

        kwargs = self._set_kwargs(*SHARED_FIELDS)
        kwargs.update(self._set_kwargs(
            "resilience", "qrpc_initial_timeout_ms", "qrpc_max_timeout_ms",
            "iqs_spec", "oqs_spec",
        ))
        kwargs.update(overrides)
        return ChaosRunConfig(**kwargs)

    def to_mc(self, **overrides: Any):
        """Build a :class:`~repro.mc.runner.McRunConfig`.

        Runner-specific fields (``defer_ms``, ``max_defer``) are
        reachable through *overrides*.
        """
        from .mc.runner import McRunConfig

        if (self.resilience is not UNSET and self.resilience) or any(
            getattr(self, f) is not UNSET
            for f in ("qrpc_initial_timeout_ms", "qrpc_max_timeout_ms")
        ):
            raise ValueError(
                "the model checker controls timing itself; resilience and "
                "qrpc timeout overrides do not apply — use to_chaos() / "
                "to_experiment() for those"
            )
        if self.iqs_spec is not UNSET or self.oqs_spec is not UNSET:
            raise ValueError(
                "the model checker's state space is calibrated for the "
                "default quorum shapes; iqs_spec/oqs_spec do not apply — "
                "use to_chaos() / to_experiment() for tuned shapes"
            )
        kwargs = self._set_kwargs(*SHARED_FIELDS)
        kwargs.update(overrides)
        return McRunConfig(**kwargs)

    def to_cdn(self, **overrides: Any):
        """Build a :class:`~repro.edge.cdn.CdnScenarioConfig`.

        Field mapping: ``num_keys`` becomes ``num_objects``;
        ``time_limit_ms`` becomes the arrival ``horizon_ms``; a set
        ``num_edges`` becomes a single-region topology with that many
        PoPs (pass ``regions``/``pops_per_region`` overrides for
        multi-region geometries).  ``num_clients``/``ops_per_client``
        describe closed-loop fleets and have no aggregate-population
        equivalent — they are ignored, as ``to_experiment`` ignores
        ``num_keys``.  The lease/QRPC/resilience fields map into
        ``deploy_kwargs`` for DQVL-family protocols, with the scenario's
        volume map preserved.  Every other
        :class:`CdnScenarioConfig` field (``users``, ``arrivals``,
        ``flash_start_ms``, ...) is reachable via *overrides*.
        """
        from .core.config import DqvlConfig
        from .core.volumes import HashVolumeMap
        from .edge.cdn import CdnScenarioConfig

        if self.weaken:
            raise ValueError(
                "cdn scenarios have no weakener hook; use to_chaos()/to_mc() "
                f"for weakened runs (weaken={self.weaken!r})"
            )
        kwargs = self._set_kwargs("protocol", "seed", "write_ratio", "jitter_ms")
        if self.num_keys is not UNSET:
            kwargs["num_objects"] = self.num_keys
        if self.time_limit_ms is not UNSET:
            kwargs["horizon_ms"] = self.time_limit_ms
        if self.num_edges is not UNSET and not (
            {"regions", "pops_per_region"} & overrides.keys()
        ):
            kwargs["regions"] = 1
            kwargs["pops_per_region"] = self.num_edges
        lease_kwargs = self._set_kwargs("lease_length_ms", "max_drift")
        qrpc_kwargs = self._set_kwargs(
            "qrpc_initial_timeout_ms", "qrpc_max_timeout_ms"
        )
        spec_kwargs = self._set_kwargs("iqs_spec", "oqs_spec")
        wants_resilience = self.resilience is not UNSET and bool(self.resilience)
        wants_deploy = (
            lease_kwargs or qrpc_kwargs or spec_kwargs or wants_resilience
            or self.client_max_attempts is not UNSET
        ) and "deploy_kwargs" not in overrides
        if wants_deploy:
            protocol = kwargs.get("protocol", "dqvl")
            if protocol not in ("dqvl", "basic_dq"):
                raise ValueError(
                    "lease_length_ms/max_drift/client_max_attempts/resilience"
                    "/qrpc timeouts/iqs_spec/oqs_spec only map to DQVL-family "
                    f"deployments, not {protocol!r}; pass deploy_kwargs "
                    "explicitly"
                )
            num_volumes = overrides.get(
                "num_volumes",
                CdnScenarioConfig.__dataclass_fields__["num_volumes"].default,
            )
            deploy: dict = {}
            if lease_kwargs or qrpc_kwargs:
                deploy["config"] = DqvlConfig(
                    proactive_renewal=(protocol == "dqvl"),
                    volume_map=HashVolumeMap(num_volumes),
                    **lease_kwargs, **qrpc_kwargs, **spec_kwargs,
                )
            else:
                # deploy-level specs keep the runner's derived defaults
                # (QRPC timeouts, volume maps) intact
                deploy.update(spec_kwargs)
            if self.client_max_attempts is not UNSET:
                deploy["client_max_attempts"] = self.client_max_attempts
            if wants_resilience:
                from .resilience import ResilienceConfig

                deploy["resilience"] = ResilienceConfig()
            kwargs["deploy_kwargs"] = deploy
        kwargs.update(overrides)
        return CdnScenarioConfig(**kwargs)

    def to_experiment(self, **overrides: Any):
        """Build an :class:`~repro.harness.experiment.ExperimentConfig`.

        Experiments have no bug-injection hook, so a set ``weaken``
        raises rather than being dropped silently.  ``num_keys`` has no
        experiment equivalent (the response-time workload derives its
        key population from locality) and is ignored.  The lease fields
        (``lease_length_ms``, ``max_drift``, ``client_max_attempts``)
        map into ``deploy_kwargs`` for the DQVL-family protocols;
        ``jitter_ms`` maps into the topology config.  Every other
        :class:`ExperimentConfig` field (``locality``, ``mode``,
        ``warmup_ops``, ``mean_write_burst``, ``think_time_ms``,
        ``trace``, ``fault_schedule``, ...) is reachable via
        *overrides*.
        """
        from .core.config import DqvlConfig
        from .edge.topology import EdgeTopologyConfig
        from .harness.experiment import ExperimentConfig

        if self.weaken:
            raise ValueError(
                "experiments have no weakener hook; use to_chaos()/to_mc() "
                f"for weakened runs (weaken={self.weaken!r})"
            )
        kwargs = self._set_kwargs(
            "protocol", "seed", "num_edges", "num_clients",
            "ops_per_client", "write_ratio", "time_limit_ms",
        )
        if self.jitter_ms is not UNSET and "topology" not in overrides:
            kwargs["topology"] = EdgeTopologyConfig(jitter_ms=self.jitter_ms)
        lease_kwargs = self._set_kwargs("lease_length_ms", "max_drift")
        qrpc_kwargs = self._set_kwargs(
            "qrpc_initial_timeout_ms", "qrpc_max_timeout_ms"
        )
        spec_kwargs = self._set_kwargs("iqs_spec", "oqs_spec")
        wants_resilience = self.resilience is not UNSET and bool(self.resilience)
        wants_deploy = (
            lease_kwargs or qrpc_kwargs or spec_kwargs or wants_resilience
            or self.client_max_attempts is not UNSET
        ) and "deploy_kwargs" not in overrides
        if wants_deploy:
            if self.protocol in ("dqvl", "basic_dq"):
                deploy: dict = {}
                if lease_kwargs or qrpc_kwargs:
                    deploy["config"] = DqvlConfig(
                        proactive_renewal=(self.protocol == "dqvl"),
                        **lease_kwargs, **qrpc_kwargs, **spec_kwargs,
                    )
                else:
                    # deploy-level specs keep the deployment's derived
                    # QRPC timeouts intact
                    deploy.update(spec_kwargs)
                if self.client_max_attempts is not UNSET:
                    deploy["client_max_attempts"] = self.client_max_attempts
                if wants_resilience:
                    from .resilience import ResilienceConfig

                    deploy["resilience"] = ResilienceConfig()
                kwargs["deploy_kwargs"] = deploy
            else:
                raise ValueError(
                    "lease_length_ms/max_drift/client_max_attempts/resilience"
                    "/qrpc timeouts/iqs_spec/oqs_spec only map to DQVL-family "
                    f"deployments, not {self.protocol!r}; pass deploy_kwargs "
                    "explicitly"
                )
        kwargs.update(overrides)
        return ExperimentConfig(**kwargs)
