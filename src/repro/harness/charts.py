"""Terminal charts — because the offline environment has no matplotlib.

:func:`ascii_chart` renders multiple (x, y) series on a character grid
with optional log-scaled y axis (needed for the unavailability figures,
which span 13 orders of magnitude).  Each series is drawn with its own
marker; a legend and axis labels are attached.  Good enough to eyeball
every figure's shape straight from ``python -m repro figure <name>
--chart``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def _nice_number(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) < 1e-3 or abs(value) >= 1e5:
        return f"{value:.0e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:g}"


def ascii_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 18,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
) -> str:
    """Render *series* (name → y values over *x_values*) as text.

    With ``log_y``, zero/negative points are clamped to the smallest
    positive value present (they render on the bottom edge).
    """
    if not x_values or not series:
        return "(no data)"
    if any(len(ys) != len(x_values) for ys in series.values()):
        raise ValueError("every series must have one y per x")

    xs = [float(x) for x in x_values]
    all_ys = [float(y) for ys in series.values() for y in ys]

    if log_y:
        positive = [y for y in all_ys if y > 0]
        floor = min(positive) if positive else 1e-12
        transform = lambda y: math.log10(max(y, floor))  # noqa: E731
        y_lo, y_hi = transform(floor), transform(max(all_ys + [floor]))
    else:
        transform = lambda y: y  # noqa: E731
        y_lo, y_hi = min(all_ys), max(all_ys)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, marker: str) -> None:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((transform(y) - y_lo) / (y_hi - y_lo) * (height - 1))
        row = height - 1 - row
        current = grid[row][col]
        grid[row][col] = marker if current in (" ", marker) else "?"

    names = sorted(series)
    for index, name in enumerate(names):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, series[name]):
            plot(x, y, marker)

    top_label = _nice_number(10 ** y_hi if log_y else y_hi)
    bottom_label = _nice_number(10 ** y_lo if log_y else y_lo)
    gutter = max(len(top_label), len(bottom_label), len(y_label)) + 1

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label.rjust(gutter)} {'(log scale)' if log_y else ''}".rstrip())
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label
        elif row_index == height - 1:
            label = bottom_label
        else:
            label = ""
        lines.append(f"{label.rjust(gutter)} |{''.join(row)}")
    lines.append(f"{' ' * gutter} +{'-' * width}")
    left = _nice_number(x_lo)
    right = _nice_number(x_hi)
    spacer = " " * max(1, width - len(left) - len(right) - len(x_label) - 2)
    lines.append(
        f"{' ' * gutter}  {left}{spacer[: len(spacer) // 2]}{x_label}"
        f"{spacer[len(spacer) // 2:]}{right}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(names)
    )
    lines.append(f"{' ' * gutter}  {legend}   ? overlap")
    return "\n".join(lines)
