"""Plain-text tables and series for the figure benches.

Every bench prints the rows/series the corresponding paper figure
plots; these helpers keep the formatting consistent and readable in
pytest output and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_series", "log_axis_note"]


def _format_cell(value, width: int) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
            text = f"{value:.3e}"
        else:
            text = f"{value:.3f}".rstrip("0").rstrip(".")
            if text in ("", "-"):
                text = "0"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    rows = [list(r) for r in rows]
    widths = [len(h) for h in headers]
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for i, cell in enumerate(row):
            text = _format_cell(cell, 0).strip()
            widths[i] = max(widths[i], len(text))
            rendered.append(text)
        rendered_rows.append(rendered)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(rendered, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Sequence[tuple],
    title: Optional[str] = None,
) -> str:
    """Render named series against an x axis (one column per series).

    ``series`` is a list of ``(name, [y values])`` pairs.
    """
    headers = [x_label] + [name for name, _ in series]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [ys[i] for _, ys in series])
    return format_table(headers, rows, title=title)


def log_axis_note(values: Iterable[float]) -> str:
    """A one-line reminder of the log-scale span (for unavailability)."""
    values = [v for v in values if v > 0]
    if not values:
        return "(all values zero)"
    import math

    low = min(values)
    high = max(values)
    return f"(log scale: spans 1e{math.floor(math.log10(low))} .. 1e{math.ceil(math.log10(high))})"
