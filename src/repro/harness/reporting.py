"""Deprecated alias for :mod:`repro.harness.report`.

The table/series formatters and the markdown report generator used to
live in two near-duplicate modules (``reporting`` and ``report``); they
are now one module.  This shim keeps ``repro.harness.reporting``
imports working and will be removed in a future release.
"""

from __future__ import annotations

import warnings

from .report import (  # noqa: F401 - re-exported for compatibility
    format_series,
    format_table,
    generate_report,
    log_axis_note,
)

__all__ = ["format_table", "format_series", "log_axis_note", "generate_report"]

warnings.warn(
    "repro.harness.reporting is deprecated; import from "
    "repro.harness.report instead",
    DeprecationWarning,
    stacklevel=2,
)
