"""Metrics derived from operation histories."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..consistency.history import History

__all__ = ["LatencyStats", "HistorySummary", "summarize"]


@dataclass
class LatencyStats:
    """Summary statistics over a latency sample (milliseconds).

    ``p50`` is an alias of ``median`` kept as a real field so cached
    sweep points and JSON payloads carry the same column names the
    dashboards print.
    """

    count: int
    mean: float
    median: float
    p95: float
    maximum: float
    p50: float = 0.0
    p99: float = 0.0

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            return cls(count=0, mean=0.0, median=0.0, p95=0.0, maximum=0.0)
        ordered = sorted(samples)
        median = _percentile(ordered, 0.5)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            median=median,
            p95=_percentile(ordered, 0.95),
            maximum=ordered[-1],
            p50=median,
            p99=_percentile(ordered, 0.99),
        )


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class HistorySummary:
    """Everything the response-time figures report, from one history."""

    reads: LatencyStats
    writes: LatencyStats
    overall: LatencyStats
    read_hit_rate: Optional[float]
    failures: int
    availability: float

    #: column names matching :meth:`row`, shared by figure benches and
    #: the observability dashboards
    ROW_COLUMNS = [
        "overall_ms",
        "read_ms",
        "write_ms",
        "availability",
        "read_hit_rate",
    ]

    def row(self) -> List[float]:
        """The columns printed by the figure benches (see
        :data:`ROW_COLUMNS`); hit rate is 0 for protocols that do not
        report hits."""
        return [
            self.overall.mean,
            self.reads.mean,
            self.writes.mean,
            self.availability,
            self.read_hit_rate if self.read_hit_rate is not None else 0.0,
        ]


def summarize(history: History) -> HistorySummary:
    """Aggregate a history into the figure metrics.

    Hit rate is only defined for protocols that report hits (DQVL);
    ``None`` otherwise.  Availability is the accepted-request fraction —
    the paper's Section 4.2 definition.
    """
    read_latencies = [op.latency for op in history.reads() if op.ok]
    write_latencies = [op.latency for op in history.writes() if op.ok]
    all_latencies = read_latencies + write_latencies
    hits = [op.hit for op in history.reads() if op.ok and op.hit is not None]
    failures = len(history.failures())
    total = len(history.ops)
    return HistorySummary(
        reads=LatencyStats.from_samples(read_latencies),
        writes=LatencyStats.from_samples(write_latencies),
        overall=LatencyStats.from_samples(all_latencies),
        read_hit_rate=(sum(hits) / len(hits)) if hits else None,
        failures=failures,
        availability=1.0 - (failures / total) if total else 1.0,
    )
