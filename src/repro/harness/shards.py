"""Sharded multi-core execution of one large scenario.

A response-time scenario with many clients is embarrassingly parallel
in this workload model: each closed-loop client reads and writes *its
own* object (see :mod:`repro.harness.experiment`), so clients never
contend on protocol state across groups.  This module exploits that by
splitting one large :class:`~repro.harness.experiment.ExperimentConfig`
into a fixed number of *groups*, running each group as an independent
simulation on the :func:`~repro.harness.sweeps.run_sweep` process pool,
and merging the per-group results back into one summary.

Determinism contract
--------------------
The decomposition is part of the scenario, not of the execution: group
boundaries and per-group seeds depend only on the base config and
``num_groups``, never on the worker count.  Raw latency samples cross
the process boundary (via the sweep ``collect`` hook) and the merged
:class:`~repro.harness.metrics.HistorySummary` is recomputed from the
concatenated samples with the same nearest-rank percentiles a single
history would use — so running with 1 worker or 16 workers produces a
byte-identical merged summary (the CI shard-merge smoke locks this in).
Merged metrics are plain summed counters over sorted keys, equally
order-independent.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .experiment import ExperimentConfig, ExperimentResult
from .metrics import HistorySummary, LatencyStats
from .sweeps import ResponsePoint, run_sweep

__all__ = [
    "ShardedResult",
    "shard_configs",
    "collect_shard",
    "merge_points",
    "run_sharded",
]


def _group_seed(base_seed: int, group: int) -> int:
    """Stable per-group seed: a function of the base seed and the group
    index only (process- and platform-independent)."""
    digest = hashlib.sha256(f"shard:{base_seed}:{group}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def shard_configs(base: ExperimentConfig, num_groups: int) -> List[ExperimentConfig]:
    """Split *base* into per-group configs.

    Clients are distributed round-robin (group sizes differ by at most
    one); each group gets a seed derived from ``(base.seed, group)``.
    ``num_groups`` is clamped to the client count so no group is empty.
    """
    if num_groups < 1:
        raise ValueError("num_groups must be positive")
    num_groups = min(num_groups, base.num_clients)
    sizes = [
        base.num_clients // num_groups + (1 if g < base.num_clients % num_groups else 0)
        for g in range(num_groups)
    ]
    configs = []
    for g, size in enumerate(sizes):
        configs.append(
            dataclasses.replace(
                base,
                num_clients=size,
                seed=_group_seed(base.seed, g),
                # topology is mutated by __post_init__; give each group
                # its own copy so groups (and the base) stay independent
                topology=dataclasses.replace(base.topology),
            )
        )
    return configs


def collect_shard(result: ExperimentResult) -> Dict[str, Any]:
    """Sweep ``collect`` hook: raw samples and counters for exact merge.

    Runs in the worker process; everything returned is JSON-serialisable
    and sufficient to reconstruct the group's contribution to a merged
    :class:`HistorySummary` without the (unpicklable) history itself.
    """
    history = result.history
    hits = [op.hit for op in history.reads() if op.ok and op.hit is not None]
    stats = result.deployment.topology.network.stats
    return {
        "read_ms": [op.latency for op in history.reads() if op.ok],
        "write_ms": [op.latency for op in history.writes() if op.ok],
        "hits_true": sum(1 for h in hits if h),
        "hits_known": len(hits),
        "failures": len(history.failures()),
        "total_ops": len(history.ops),
        "messages_by_kind": dict(stats.by_kind),
        "events_processed": result.deployment.topology.sim.events_processed,
    }


@dataclass
class ShardedResult:
    """Merged outcome of one sharded scenario."""

    config: ExperimentConfig
    num_groups: int
    summary: HistorySummary
    messages_per_request: float
    total_requests: int
    #: max over groups — the scenario's critical-path simulated time
    sim_time_ms: float
    #: summed counters: per-kind message counts plus kernel totals
    metrics: Dict[str, float] = field(default_factory=dict)
    #: the per-group sweep points, in group order
    points: List[ResponsePoint] = field(default_factory=list)


def merge_points(base: ExperimentConfig, points: List[ResponsePoint]) -> ShardedResult:
    """Exact deterministic merge of per-group points.

    Latency statistics are recomputed from the concatenated raw samples
    (identical to summarising the union history); counters are summed.
    Group order is fixed by the plan, and every reduction used here is
    order-independent anyway, so the result cannot depend on scheduling.
    """
    read_ms: List[float] = []
    write_ms: List[float] = []
    hits_true = hits_known = failures = total_ops = 0
    protocol_messages = 0
    total_requests = 0
    sim_time_ms = 0.0
    metrics: Dict[str, float] = {}
    for point in points:
        extras = point.extras
        read_ms.extend(extras["read_ms"])
        write_ms.extend(extras["write_ms"])
        hits_true += extras["hits_true"]
        hits_known += extras["hits_known"]
        failures += extras["failures"]
        total_ops += extras["total_ops"]
        protocol_messages += round(point.messages_per_request * point.total_requests)
        total_requests += point.total_requests
        sim_time_ms = max(sim_time_ms, point.sim_time_ms)
        for kind, count in extras["messages_by_kind"].items():
            key = f"net.messages.{kind}"
            metrics[key] = metrics.get(key, 0.0) + count
        metrics["kernel.events_processed"] = (
            metrics.get("kernel.events_processed", 0.0) + extras["events_processed"]
        )
    summary = HistorySummary(
        reads=LatencyStats.from_samples(read_ms),
        writes=LatencyStats.from_samples(write_ms),
        overall=LatencyStats.from_samples(read_ms + write_ms),
        read_hit_rate=(hits_true / hits_known) if hits_known else None,
        failures=failures,
        availability=1.0 - (failures / total_ops) if total_ops else 1.0,
    )
    return ShardedResult(
        config=base,
        num_groups=len(points),
        summary=summary,
        messages_per_request=(
            protocol_messages / total_requests if total_requests else 0.0
        ),
        total_requests=total_requests,
        sim_time_ms=sim_time_ms,
        metrics={k: metrics[k] for k in sorted(metrics)},
        points=points,
    )


def run_sharded(
    base: ExperimentConfig,
    *,
    num_groups: int = 8,
    workers: Optional[int] = None,
    cache: bool = True,
    cache_path: Optional[str] = None,
) -> ShardedResult:
    """Run *base* as ``num_groups`` independent group simulations on up
    to *workers* processes and merge the results.

    The merged summary is a pure function of ``(base, num_groups)``:
    the worker count only changes wall-clock time.
    """
    configs = shard_configs(base, num_groups)
    points = run_sweep(
        configs,
        collect=collect_shard,
        workers=workers,
        cache=cache,
        cache_path=cache_path,
    )
    return merge_points(base, points)  # type: ignore[arg-type]
