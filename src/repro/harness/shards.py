"""Sharded multi-core execution of one large scenario.

A response-time scenario with many clients is embarrassingly parallel
in this workload model: each closed-loop client reads and writes *its
own* object (see :mod:`repro.harness.experiment`), so clients never
contend on protocol state across groups.  This module exploits that by
splitting one large :class:`~repro.harness.experiment.ExperimentConfig`
into a fixed number of *groups*, running each group as an independent
simulation on the :func:`~repro.harness.sweeps.run_sweep` process pool,
and merging the per-group results back into one summary.

Determinism contract
--------------------
The decomposition is part of the scenario, not of the execution: group
boundaries and per-group seeds depend only on the base config and
``num_groups``, never on the worker count.  Raw latency samples cross
the process boundary (via the sweep ``collect`` hook) and the merged
:class:`~repro.harness.metrics.HistorySummary` is recomputed from the
concatenated samples with the same nearest-rank percentiles a single
history would use — so running with 1 worker or 16 workers produces a
byte-identical merged summary (the CI shard-merge smoke locks this in).
Merged metrics are plain summed counters over sorted keys, equally
order-independent.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from typing import TYPE_CHECKING

from .experiment import ExperimentConfig, ExperimentResult
from .metrics import HistorySummary, LatencyStats
from .sweeps import CdnPoint, ResponsePoint, run_sweep

if TYPE_CHECKING:  # imported lazily at runtime (cdn imports this package)
    from ..edge.cdn import CdnResult, CdnScenarioConfig

__all__ = [
    "ShardedResult",
    "shard_configs",
    "collect_shard",
    "merge_points",
    "run_sharded",
    "CdnShardedResult",
    "shard_cdn_configs",
    "collect_cdn_shard",
    "merge_cdn_points",
    "run_sharded_cdn",
]


def _group_seed(base_seed: int, group: int) -> int:
    """Stable per-group seed: a function of the base seed and the group
    index only (process- and platform-independent)."""
    digest = hashlib.sha256(f"shard:{base_seed}:{group}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def shard_configs(base: ExperimentConfig, num_groups: int) -> List[ExperimentConfig]:
    """Split *base* into per-group configs.

    Clients are distributed round-robin (group sizes differ by at most
    one); each group gets a seed derived from ``(base.seed, group)``.
    ``num_groups`` is clamped to the client count so no group is empty.
    """
    if num_groups < 1:
        raise ValueError("num_groups must be positive")
    num_groups = min(num_groups, base.num_clients)
    sizes = [
        base.num_clients // num_groups + (1 if g < base.num_clients % num_groups else 0)
        for g in range(num_groups)
    ]
    configs = []
    for g, size in enumerate(sizes):
        configs.append(
            dataclasses.replace(
                base,
                num_clients=size,
                seed=_group_seed(base.seed, g),
                # topology is mutated by __post_init__; give each group
                # its own copy so groups (and the base) stay independent
                topology=dataclasses.replace(base.topology),
            )
        )
    return configs


def collect_shard(result: ExperimentResult) -> Dict[str, Any]:
    """Sweep ``collect`` hook: raw samples and counters for exact merge.

    Runs in the worker process; everything returned is JSON-serialisable
    and sufficient to reconstruct the group's contribution to a merged
    :class:`HistorySummary` without the (unpicklable) history itself.
    """
    history = result.history
    hits = [op.hit for op in history.reads() if op.ok and op.hit is not None]
    stats = result.deployment.topology.network.stats
    return {
        "read_ms": [op.latency for op in history.reads() if op.ok],
        "write_ms": [op.latency for op in history.writes() if op.ok],
        "hits_true": sum(1 for h in hits if h),
        "hits_known": len(hits),
        "failures": len(history.failures()),
        "total_ops": len(history.ops),
        "messages_by_kind": dict(stats.by_kind),
        "events_processed": result.deployment.topology.sim.events_processed,
    }


@dataclass
class ShardedResult:
    """Merged outcome of one sharded scenario."""

    config: ExperimentConfig
    num_groups: int
    summary: HistorySummary
    messages_per_request: float
    total_requests: int
    #: max over groups — the scenario's critical-path simulated time
    sim_time_ms: float
    #: summed counters: per-kind message counts plus kernel totals
    metrics: Dict[str, float] = field(default_factory=dict)
    #: the per-group sweep points, in group order
    points: List[ResponsePoint] = field(default_factory=list)


def merge_points(base: ExperimentConfig, points: List[ResponsePoint]) -> ShardedResult:
    """Exact deterministic merge of per-group points.

    Latency statistics are recomputed from the concatenated raw samples
    (identical to summarising the union history); counters are summed.
    Group order is fixed by the plan, and every reduction used here is
    order-independent anyway, so the result cannot depend on scheduling.
    """
    read_ms: List[float] = []
    write_ms: List[float] = []
    hits_true = hits_known = failures = total_ops = 0
    protocol_messages = 0
    total_requests = 0
    sim_time_ms = 0.0
    metrics: Dict[str, float] = {}
    for point in points:
        extras = point.extras
        read_ms.extend(extras["read_ms"])
        write_ms.extend(extras["write_ms"])
        hits_true += extras["hits_true"]
        hits_known += extras["hits_known"]
        failures += extras["failures"]
        total_ops += extras["total_ops"]
        protocol_messages += round(point.messages_per_request * point.total_requests)
        total_requests += point.total_requests
        sim_time_ms = max(sim_time_ms, point.sim_time_ms)
        for kind, count in extras["messages_by_kind"].items():
            key = f"net.messages.{kind}"
            metrics[key] = metrics.get(key, 0.0) + count
        metrics["kernel.events_processed"] = (
            metrics.get("kernel.events_processed", 0.0) + extras["events_processed"]
        )
    summary = HistorySummary(
        reads=LatencyStats.from_samples(read_ms),
        writes=LatencyStats.from_samples(write_ms),
        overall=LatencyStats.from_samples(read_ms + write_ms),
        read_hit_rate=(hits_true / hits_known) if hits_known else None,
        failures=failures,
        availability=1.0 - (failures / total_ops) if total_ops else 1.0,
    )
    return ShardedResult(
        config=base,
        num_groups=len(points),
        summary=summary,
        messages_per_request=(
            protocol_messages / total_requests if total_requests else 0.0
        ),
        total_requests=total_requests,
        sim_time_ms=sim_time_ms,
        metrics={k: metrics[k] for k in sorted(metrics)},
        points=points,
    )


def run_sharded(
    base: ExperimentConfig,
    *,
    num_groups: int = 8,
    workers: Optional[int] = None,
    cache: bool = True,
    cache_path: Optional[str] = None,
) -> ShardedResult:
    """Run *base* as ``num_groups`` independent group simulations on up
    to *workers* processes and merge the results.

    The merged summary is a pure function of ``(base, num_groups)``:
    the worker count only changes wall-clock time.
    """
    configs = shard_configs(base, num_groups)
    points = run_sweep(
        configs,
        collect=collect_shard,
        workers=workers,
        cache=cache,
        cache_path=cache_path,
    )
    return merge_points(base, points)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# sharded edge-CDN scenarios
# ---------------------------------------------------------------------------
#
# A CDN population shards even more naturally than closed-loop clients:
# splitting a Poisson process of rate N·λ into G independent processes
# of rate N·λ/G is an *exact* decomposition (superposition property),
# so each group simulates the full multi-PoP topology driven by its
# share of the modeled users.  As with closed-loop shards, groups run
# as independent simulations and the merge is deterministic — a pure
# function of (base config, num_groups), independent of worker count.

def shard_cdn_configs(base: "CdnScenarioConfig", num_groups: int) -> List["CdnScenarioConfig"]:
    """Split a CDN scenario's population into per-group scenarios.

    Users are divided evenly (sizes differ by at most one); every group
    keeps the full regions × PoPs topology and gets a seed derived from
    ``(base.seed, group)``.  ``num_groups`` is clamped to the user count.
    """
    if num_groups < 1:
        raise ValueError("num_groups must be positive")
    num_groups = min(num_groups, base.users)
    sizes = [
        base.users // num_groups + (1 if g < base.users % num_groups else 0)
        for g in range(num_groups)
    ]
    return [
        dataclasses.replace(
            base,
            users=size,
            seed=_group_seed(base.seed, g),
            deploy_kwargs=dict(base.deploy_kwargs),
        )
        for g, size in enumerate(sizes)
    ]


def collect_cdn_shard(result: "CdnResult") -> Dict[str, Any]:
    """Sweep ``collect`` hook: raw samples for the exact merge."""
    history = result.history
    hits = [op.hit for op in history.reads() if op.ok and op.hit is not None]
    return {
        "read_ms": [op.latency for op in history.reads() if op.ok],
        "write_ms": [op.latency for op in history.writes() if op.ok],
        "hits_true": sum(1 for h in hits if h),
        "hits_known": len(hits),
        "failures": len(history.failures()),
        "total_ops": len(history.ops),
    }


@dataclass
class CdnShardedResult:
    """Merged outcome of one sharded CDN scenario."""

    config: "CdnScenarioConfig"
    num_groups: int
    summary: HistorySummary
    #: population counters summed across groups (queue_peak: max)
    stats: Dict[str, Any]
    #: front-end counters summed across groups
    fe_counters: Dict[str, int]
    #: summed kernel events across group simulations
    events_processed: int
    #: max over groups — the scenario's critical-path simulated time
    sim_time_ms: float
    #: merged phase-budget table is not meaningful across groups; the
    #: per-group budgets are kept instead (None entries when trace off)
    budgets: List[Optional[Dict[str, Any]]] = field(default_factory=list)
    points: List["CdnPoint"] = field(default_factory=list)

    def to_json_obj(self) -> Dict[str, Any]:
        """Canonical reduced form for byte comparison."""
        return {
            "config": dataclasses.asdict(self.config),
            "num_groups": self.num_groups,
            "summary": dataclasses.asdict(self.summary),
            "stats": {k: self.stats[k] for k in sorted(self.stats)},
            "fe_counters": {
                k: self.fe_counters[k] for k in sorted(self.fe_counters)
            },
            "events_processed": self.events_processed,
            "sim_time_ms": self.sim_time_ms,
            "budgets": self.budgets,
        }

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_json_obj(), sort_keys=True,
                          separators=(",", ":"), default=repr) + "\n"


def merge_cdn_points(base: "CdnScenarioConfig",
                     points: List["CdnPoint"]) -> CdnShardedResult:
    """Exact deterministic merge of per-group CDN points."""
    read_ms: List[float] = []
    write_ms: List[float] = []
    hits_true = hits_known = failures = total_ops = 0
    stats: Dict[str, Any] = {}
    fe_counters: Dict[str, int] = {}
    events = 0
    sim_time_ms = 0.0
    budgets: List[Optional[Dict[str, Any]]] = []
    for point in points:
        extras = point.extras
        read_ms.extend(extras["read_ms"])
        write_ms.extend(extras["write_ms"])
        hits_true += extras["hits_true"]
        hits_known += extras["hits_known"]
        failures += extras["failures"]
        total_ops += extras["total_ops"]
        for key, value in point.stats.items():
            if key == "queue_peak":
                stats[key] = max(stats.get(key, 0), value)
            else:
                stats[key] = stats.get(key, 0) + value
        for key, value in point.fe_counters.items():
            fe_counters[key] = fe_counters.get(key, 0) + value
        events += point.events_processed
        sim_time_ms = max(sim_time_ms, point.sim_time_ms)
        budgets.append(point.budget)
    summary = HistorySummary(
        reads=LatencyStats.from_samples(read_ms),
        writes=LatencyStats.from_samples(write_ms),
        overall=LatencyStats.from_samples(read_ms + write_ms),
        read_hit_rate=(hits_true / hits_known) if hits_known else None,
        failures=failures,
        availability=1.0 - (failures / total_ops) if total_ops else 1.0,
    )
    return CdnShardedResult(
        config=base,
        num_groups=len(points),
        summary=summary,
        stats=stats,
        fe_counters=fe_counters,
        events_processed=events,
        sim_time_ms=sim_time_ms,
        budgets=budgets,
        points=points,
    )


def run_sharded_cdn(
    base: "CdnScenarioConfig",
    *,
    num_groups: int = 8,
    workers: Optional[int] = None,
    cache: bool = True,
    cache_path: Optional[str] = None,
) -> CdnShardedResult:
    """Run one CDN scenario as ``num_groups`` independent population
    shards on the sweep process pool and merge the results.

    The merged result is a pure function of ``(base, num_groups)``.
    """
    configs = shard_cdn_configs(base, num_groups)
    points = run_sweep(
        configs,
        collect=collect_cdn_shard,
        workers=workers,
        cache=cache,
        cache_path=cache_path,
    )
    return merge_cdn_points(base, points)  # type: ignore[arg-type]
