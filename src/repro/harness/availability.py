"""Simulation-based availability measurement (Figure 8 cross-check).

The paper's Figure 8 is analytical.  This module measures availability
empirically on the simulator: replicas suffer independent per-epoch
outages with probability *p* (the discrete analogue of the paper's
failure model), closed-loop clients issue operations with a bounded
retry budget, and availability is the accepted fraction — exactly the
paper's definition ("the number of client requests successfully
processed by the system over the total number of requests submitted").

Two refinements the analytic model cannot capture:

* **Lease masking.**  The paper notes its DQVL formula is *pessimistic*
  "because a read can proceed without contacting any read quorum in IQS
  if the read quorum in OQS holds valid volume and object leases; this
  effect may mask some failures that are shorter than the volume lease
  duration."  The measured numbers quantify that effect.
* **No-stale ROWA-Async.**  The epidemic baseline accepts every request;
  the fair comparison (Yu & Vahdat) rejects reads that would return
  stale data.  We run ROWA-Async normally and charge stale reads as
  rejections post-hoc using the recorded history — an omniscient oracle
  only a simulator can provide.

Physical placement: each of the *n* replicas is one failure domain; for
DQVL that domain hosts both the IQS and the OQS role (the paper's
co-location remark), so an outage takes both down together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..consistency.history import History
from ..consistency.regular import staleness_report
from ..core.cluster import build_dqvl_cluster
from ..core.config import DqvlConfig
from ..protocols.majority import build_majority_cluster
from ..protocols.primary_backup import build_primary_backup_cluster
from ..protocols.rowa import build_rowa_cluster
from ..protocols.rowa_async import build_rowa_async_cluster
from ..sim.failures import BernoulliOutages
from ..sim.kernel import Simulator
from ..sim.network import ConstantDelay, Network
from ..workload.generators import BernoulliOpStream, FixedKeyChooser
from ..workload.runner import REJECTION_ERRORS

__all__ = ["AvailabilitySimConfig", "AvailabilitySimResult", "run_availability_sim"]

_SUPPORTED = ("dqvl", "majority", "rowa", "rowa_async", "rowa_async_no_stale",
              "primary_backup")


@dataclass
class AvailabilitySimConfig:
    """Parameters of one measured-availability run."""

    protocol: str = "dqvl"
    write_ratio: float = 0.25
    num_replicas: int = 5
    #: per-epoch, per-replica outage probability (the model's p)
    p: float = 0.1
    epochs: int = 200
    epoch_ms: float = 4_000.0
    num_clients: int = 2
    #: open-loop submission interval per client
    interarrival_ms: float = 200.0
    seed: int = 0
    delay_ms: float = 10.0
    #: retry budget before an operation counts as rejected
    max_attempts: int = 2
    rpc_timeout_ms: float = 150.0
    lease_length_ms: float = 1_500.0
    #: declarative IQS/OQS quorum shapes (canonical spec strings;
    #: DQVL only).  ``None`` = the paper's defaults.  The ``repro tune``
    #: autotuner uses these to cross-check its analytic availability
    #: predictions against measurement.
    iqs_spec: Optional[str] = None
    oqs_spec: Optional[str] = None

    def __post_init__(self) -> None:
        if self.protocol not in _SUPPORTED:
            raise KeyError(
                f"unknown protocol {self.protocol!r}; choose from {_SUPPORTED}"
            )
        if not 0.0 <= self.p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        if self.epochs < 1 or self.num_replicas < 1:
            raise ValueError("epochs and num_replicas must be positive")
        if self.iqs_spec is not None or self.oqs_spec is not None:
            if self.protocol != "dqvl":
                raise ValueError(
                    "iqs_spec/oqs_spec only reach the dqvl deployment, "
                    f"not {self.protocol!r}"
                )
            from ..quorum.spec import QuorumSpec

            for name in ("iqs_spec", "oqs_spec"):
                value = getattr(self, name)
                if value is not None:
                    setattr(self, name, str(QuorumSpec.parse(value)))


@dataclass
class AvailabilitySimResult:
    """Measured availability plus the raw counters."""

    config: AvailabilitySimConfig
    total_requests: int
    rejected: int
    stale_rejected: int
    history: History = field(repr=False, default=None)

    @property
    def availability(self) -> float:
        if not self.total_requests:
            return 1.0
        return 1.0 - (self.rejected + self.stale_rejected) / self.total_requests

    @property
    def unavailability(self) -> float:
        return 1.0 - self.availability


def _build(config: AvailabilitySimConfig, sim: Simulator, net: Network):
    """Build the protocol cluster; returns (client_factory, fault_nodes).

    ``fault_nodes`` groups the simulated processes per failure domain:
    an outage crashes the whole group.
    """
    n = config.num_replicas
    qrpc = {
        "initial_timeout_ms": config.rpc_timeout_ms,
        "max_attempts": config.max_attempts,
    }
    if config.protocol == "dqvl":
        dq_config = DqvlConfig(
            lease_length_ms=config.lease_length_ms,
            qrpc_initial_timeout_ms=config.rpc_timeout_ms,
            inval_initial_timeout_ms=config.rpc_timeout_ms,
            client_max_attempts=config.max_attempts,
            iqs_spec=config.iqs_spec,
            oqs_spec=config.oqs_spec,
        )
        cluster = build_dqvl_cluster(
            sim, net,
            [f"iqs{k}" for k in range(n)],
            [f"oqs{k}" for k in range(n)],
            dq_config,
        )
        domains = [
            [cluster.iqs_node(f"iqs{k}"), cluster.oqs_node(f"oqs{k}")]
            for k in range(n)
        ]

        def client_factory(c):
            return cluster.client(f"c{c}", prefer_oqs=f"oqs{c % n}")

        return client_factory, domains

    server_ids = [f"s{k}" for k in range(n)]
    if config.protocol == "majority":
        cluster = build_majority_cluster(sim, net, server_ids, qrpc_config=qrpc)
        factory = lambda c: cluster.client(f"c{c}", prefer=f"s{c % n}")  # noqa: E731
    elif config.protocol == "rowa":
        cluster = build_rowa_cluster(sim, net, server_ids, qrpc_config=qrpc)
        factory = lambda c: cluster.client(f"c{c}", prefer=f"s{c % n}")  # noqa: E731
    elif config.protocol in ("rowa_async", "rowa_async_no_stale"):
        cluster = build_rowa_async_cluster(
            sim, net, server_ids,
            gossip_interval_ms=500.0,
            rpc_timeout_ms=config.rpc_timeout_ms,
            max_attempts=config.max_attempts,
        )
        factory = lambda c: cluster.client(f"c{c}", prefer=f"s{c % n}")  # noqa: E731
    elif config.protocol == "primary_backup":
        cluster = build_primary_backup_cluster(
            sim, net, server_ids,
            rpc_timeout_ms=config.rpc_timeout_ms,
            max_attempts=config.max_attempts,
        )
        factory = lambda c: cluster.client(f"c{c}")  # noqa: E731
    else:  # pragma: no cover - guarded by config validation
        raise KeyError(config.protocol)
    domains = [[s] for s in cluster.servers]
    return factory, domains


class _DomainOutages(BernoulliOutages):
    """Bernoulli outages over failure domains (groups of nodes)."""

    def __init__(self, sim, domains, p, epoch_ms, total_epochs):
        # flatten for the parent; regroup in _epoch
        self._domains = domains
        flat = [node for group in domains for node in group]
        super().__init__(sim, flat, p, epoch_ms, total_epochs)

    def _epoch(self) -> None:
        if self.total_epochs is not None and self.epochs_run >= self.total_epochs:
            for node in self.nodes:
                node.recover()
            return
        self.epochs_run += 1
        for group in self._domains:
            down = self.sim.rng.random() < self.p
            for node in group:
                if down and node.alive:
                    node.crash()
                    self.outage_log.append((self.sim.now, node.node_id))
                elif not down and not node.alive:
                    node.recover()
        self.sim.schedule(self.epoch_ms, self._epoch)


def run_availability_sim(config: AvailabilitySimConfig) -> AvailabilitySimResult:
    """Measure availability under per-epoch Bernoulli outages."""
    sim = Simulator(seed=config.seed)
    net = Network(sim, ConstantDelay(config.delay_ms))
    client_factory, domains = _build(config, sim, net)

    outages = _DomainOutages(
        sim, domains, p=config.p, epoch_ms=config.epoch_ms,
        total_epochs=config.epochs,
    )
    outages.start(at=config.epoch_ms)  # first epoch after warm-up

    deadline = (config.epochs + 1) * config.epoch_ms
    history = History()
    # OPEN-loop arrivals: one operation per client every interarrival_ms,
    # regardless of earlier completions.  The paper's availability is a
    # per-submitted-request fraction; a closed loop would bias it (slow
    # failures suppress subsequent submissions during outages).
    for c in range(config.num_clients):
        client = client_factory(c)
        stream = BernoulliOpStream(
            sim.rng, FixedKeyChooser(f"obj{c}"), config.write_ratio, label=f"c{c}-"
        )

        def issue_one(client=client, stream=stream):
            spec = next(stream)
            start = sim.now
            try:
                if spec.kind == "read":
                    result = yield from client.read(spec.key)
                    history.record_read(result)
                else:
                    result = yield from client.write(spec.key, spec.value)
                    history.record_write(result)
            except REJECTION_ERRORS:
                history.record_failure(
                    spec.kind, spec.key, start, sim.now, client.node_id
                )

        t = config.epoch_ms  # submissions start with the first epoch
        while t < deadline:
            sim.schedule(t, lambda io=issue_one: sim.spawn(io()))
            t += config.interarrival_ms
    sim.run(until=deadline + 120_000.0)

    rejected = len(history.failures())
    stale_rejected = 0
    if config.protocol == "rowa_async_no_stale":
        stale_rejected = staleness_report(history).stale_reads
    return AvailabilitySimResult(
        config=config,
        total_requests=len(history),
        rejected=rejected,
        stale_rejected=stale_rejected,
        history=history,
    )
