"""Experiment harness: configs, runner, sweeps, metrics, reporting."""

from .availability import (
    AvailabilitySimConfig,
    AvailabilitySimResult,
    run_availability_sim,
)
from .experiment import ExperimentConfig, ExperimentResult, run_response_time
from .metrics import HistorySummary, LatencyStats, summarize
from .report import format_series, format_table, log_axis_note
from .sweeps import (
    AvailabilityPoint,
    ResponsePoint,
    SweepCacheStats,
    run_sweep,
)

__all__ = [
    "AvailabilitySimConfig",
    "AvailabilitySimResult",
    "run_availability_sim",
    "ExperimentConfig",
    "ExperimentResult",
    "run_response_time",
    "LatencyStats",
    "HistorySummary",
    "summarize",
    "format_table",
    "format_series",
    "log_axis_note",
    "run_sweep",
    "ResponsePoint",
    "AvailabilityPoint",
    "SweepCacheStats",
]
