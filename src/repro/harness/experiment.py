"""The experiment runner behind every simulated figure.

:func:`run_response_time` reproduces the paper's prototype experiment
(Section 4.1): ``num_clients`` closed-loop application clients, each
homed at a distinct edge server, issuing reads and writes to their own
object at a given write ratio, with a given access locality, against a
chosen protocol on the paper's delay topology.  It returns the history,
summary metrics, and protocol message counts, from which the Figure 6,
7 and 9 benches print their rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..chaos.faults import FaultSchedule
from ..consistency.history import History
from ..core.config import DqvlConfig
from ..edge.deployments import PROTOCOL_DEPLOYERS, Deployment
from ..edge.topology import EdgeTopology, EdgeTopologyConfig
from ..obs import Observability
from ..sim.kernel import Simulator, all_of
from ..workload.generators import BernoulliOpStream, FixedKeyChooser, MarkovBurstStream
from ..workload.runner import closed_loop
from .metrics import HistorySummary, summarize

__all__ = ["ExperimentConfig", "ExperimentResult", "run_response_time"]


@dataclass
class ExperimentConfig:
    """Parameters of one response-time run (defaults: the paper's)."""

    protocol: str = "dqvl"
    write_ratio: float = 0.05
    locality: float = 1.0
    num_edges: int = 9
    num_clients: int = 3
    ops_per_client: int = 200
    warmup_ops: int = 10
    seed: int = 0
    #: "direct" — service clients on the app machines, locality switches
    #: the preferred replica per operation (the paper's measurement
    #: setup); "frontend" — requests traverse redirected front ends
    #: (the full Figure 1 architecture).
    mode: str = "direct"
    #: bursty stream instead of IID; mean write-burst length when set
    mean_write_burst: Optional[float] = None
    #: per-client think time between operations
    think_time_ms: float = 0.0
    #: extra kwargs handed to the protocol deployer
    deploy_kwargs: Dict[str, Any] = field(default_factory=dict)
    topology: EdgeTopologyConfig = field(default_factory=EdgeTopologyConfig)
    #: simulated-time safety limit
    time_limit_ms: float = 3_600_000.0
    #: opt-in observability: span tracing + metrics (see repro.obs)
    trace: bool = False
    #: optional fault windows installed before the workload starts —
    #: lets `repro trace` show, e.g., a read miss inside a partition
    fault_schedule: Optional[FaultSchedule] = None

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOL_DEPLOYERS:
            raise KeyError(
                f"unknown protocol {self.protocol!r}; "
                f"choose from {sorted(PROTOCOL_DEPLOYERS)}"
            )
        if self.mode not in ("direct", "frontend"):
            raise ValueError("mode must be 'direct' or 'frontend'")
        self.topology.num_edges = self.num_edges
        self.topology.num_clients = self.num_clients


@dataclass
class ExperimentResult:
    """Outcome of one run."""

    config: ExperimentConfig
    history: History
    summary: HistorySummary
    protocol_messages: int
    total_requests: int
    sim_time_ms: float
    deployment: Deployment
    warmup_history: Optional[History] = None
    #: populated when ``config.trace`` was set: the run's Observability
    #: context (span tracer + metrics), ready for the repro.obs exporters
    obs: Optional[Observability] = None

    @property
    def messages_per_request(self) -> float:
        return self.protocol_messages / self.total_requests if self.total_requests else 0.0

    def full_history(self) -> History:
        """Warm-up plus measured operations, time-ordered.

        Consistency checking must see the *whole* execution — a warm-up
        write is a perfectly legal value for the first measured read —
        while latency metrics intentionally exclude the warm-up.

        The sort key is a total order: ``(start, end)`` alone leaves the
        order of operations sharing both timestamps up to the merge
        order, so ties break on client id, kind, and key to keep merged
        histories deterministic.
        """
        merged = History()
        ops = list(self.history.ops)
        if self.warmup_history is not None:
            ops += self.warmup_history.ops
        merged.ops = sorted(
            ops, key=lambda op: (op.start, op.end, op.client, op.kind, op.key)
        )
        return merged


class RedirectedClient:
    """Per-operation replica redirection around a protocol client.

    Before each operation, the preferred replica is pointed at the home
    edge with probability *locality* and at a uniformly random distant
    edge otherwise — the paper's access-locality model: the user (or a
    failure of the closest replica) occasionally lands their session on
    a different edge server.  Protocols without replica choice
    (primary/backup, and majority's latency-equivalent quorums) are
    naturally unaffected, which is exactly Figure 7(b)'s flat curves.
    """

    def __init__(self, deployment, inner, home_edge: int, locality: float, rng) -> None:
        if not 0.0 <= locality <= 1.0:
            raise ValueError("locality must be in [0, 1]")
        self.deployment = deployment
        self.inner = inner
        self.home_edge = home_edge
        self.locality = locality
        self.rng = rng
        self._others = [
            k for k in range(deployment.topology.config.num_edges) if k != home_edge
        ]

    @property
    def node_id(self) -> str:
        return self.inner.node_id

    def _retarget(self) -> None:
        if self.locality >= 1.0 or not self._others or self.rng.random() < self.locality:
            edge = self.home_edge
        else:
            edge = self.rng.choice(self._others)
        self.deployment.set_preferred_edge(self.inner, edge)

    def read(self, key: str):
        self._retarget()
        result = yield from self.inner.read(key)
        return result

    def write(self, key: str, value):
        self._retarget()
        result = yield from self.inner.write(key, value)
        return result


def run_response_time(config: ExperimentConfig) -> ExperimentResult:
    """Execute one response-time experiment and summarise it.

    Every client operates on its own object (the per-customer profile of
    the paper's motivating workload); redirection (`locality`) moves
    *which replica serves it*, not which object it touches — that is
    what makes low locality hurt DQVL (the newly chosen replica must
    validate its cache) while leaving majority and primary/backup flat,
    as in Figure 7(b).
    """
    sim = Simulator(seed=config.seed)
    topology = EdgeTopology(sim, config.topology)
    deployer = PROTOCOL_DEPLOYERS[config.protocol]
    deployment = deployer(topology, **config.deploy_kwargs)

    obs: Optional[Observability] = None
    if config.trace:
        obs = Observability(sim).install(topology.network)
    if config.fault_schedule is not None:
        config.fault_schedule.install(sim, topology.network)

    history = History()
    warmup_history = History()
    processes = []
    for c in range(config.num_clients):
        if config.mode == "direct":
            app = RedirectedClient(
                deployment,
                deployment.direct_client(c),
                topology.home_edge_index(c),
                config.locality,
                sim.rng,
            )
        else:
            app = deployment.app_client(c, locality=config.locality)
        keys = FixedKeyChooser(f"profile{c}")
        rng = sim.rng
        if config.mean_write_burst is not None:
            stream = MarkovBurstStream(
                rng, keys, config.write_ratio,
                mean_write_burst=config.mean_write_burst, label=f"c{c}-",
            )
        else:
            stream = BernoulliOpStream(rng, keys, config.write_ratio, label=f"c{c}-")

        def client_proc(app=app, stream=stream):
            # Warm-up fills caches and lease tables before measurement.
            yield from closed_loop(
                sim, app, stream, warmup_history, config.warmup_ops,
                think_time_ms=config.think_time_ms,
            )
            yield from closed_loop(
                sim, app, stream, history, config.ops_per_client,
                think_time_ms=config.think_time_ms,
            )

        processes.append(sim.spawn(client_proc(), name=f"client{c}"))

    # Measurement window: count protocol messages only after warm-up.
    # Warm-up lengths differ across clients, so approximate the window by
    # subtracting the warm-up traffic recorded in `warmup_history` — the
    # per-request figure uses measured requests against measured traffic.
    sim.run(until=config.time_limit_ms)
    for proc in processes:
        if not proc.done:
            raise RuntimeError(
                f"experiment hit the time limit with {proc.name} unfinished; "
                "raise time_limit_ms or lower ops_per_client"
            )

    total_requests = len(history) + len(warmup_history)
    measured_requests = len(history)
    all_protocol_messages = deployment.protocol_message_count()
    # Prorate warm-up traffic out of the message count.
    if total_requests:
        prorated = all_protocol_messages * (measured_requests / total_requests)
    else:
        prorated = 0.0

    if obs is not None:
        obs.finalize(topology.network, deployment)

    return ExperimentResult(
        config=config,
        history=history,
        summary=summarize(history),
        protocol_messages=int(round(prorated)),
        total_requests=measured_requests,
        sim_time_ms=sim.now,
        deployment=deployment,
        warmup_history=warmup_history,
        obs=obs,
    )
