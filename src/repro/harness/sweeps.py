"""Parallel, cached execution of experiment sweeps.

Every figure and ablation is a *sweep*: dozens of independent
:class:`~repro.harness.experiment.ExperimentConfig` (or
:class:`~repro.harness.availability.AvailabilitySimConfig`) points whose
results are pure functions of the config and the code.  This module
exploits both properties:

* **Parallelism** — :func:`run_sweep` fans uncached points across a
  ``concurrent.futures.ProcessPoolExecutor`` (the simulator is
  single-threaded CPU-bound Python, so processes, not threads).  The
  worker count comes from the ``REPRO_SWEEP_WORKERS`` environment
  variable, defaulting to ``os.cpu_count()``.
* **Caching** — each point's reduced result is persisted under
  ``results/.cache/`` (override with ``REPRO_SWEEP_CACHE``), keyed by a
  stable hash of the dataclass config plus a content hash of the
  ``repro`` source tree.  Re-running a bench recomputes only points
  whose config or code changed; delete the directory to force a full
  recompute.

Results are *reduced*: simulator objects (deployment, history) do not
survive the process/cache boundary.  A sweep point carries the summary
metrics every bench reads; anything else must be extracted in the
worker via the ``collect`` callback, which receives the full
:class:`ExperimentResult` and returns a JSON-serialisable dict exposed
as ``point.extras``.

Cache effectiveness is observable: module-level :data:`CACHE_STATS`
counts hits and misses across calls, and every sweep logs one line
(``repro.harness.sweeps`` logger, or stderr with
``REPRO_SWEEP_VERBOSE=1``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pickle
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..chaos.campaign import ChaosRunConfig, run_chaos
from .availability import AvailabilitySimConfig, run_availability_sim
from .experiment import ExperimentConfig, run_response_time
from .metrics import HistorySummary, LatencyStats

__all__ = [
    "SweepCacheStats",
    "ResponsePoint",
    "AvailabilityPoint",
    "ChaosPoint",
    "CdnPoint",
    "run_sweep",
    "clear_cache",
    "sweep_workers",
    "cache_dir",
    "CACHE_STATS",
]

logger = logging.getLogger("repro.harness.sweeps")

_CACHE_VERSION = 1

SweepConfig = Union[ExperimentConfig, AvailabilitySimConfig, ChaosRunConfig]


@dataclass
class SweepCacheStats:
    """Cumulative cache counters (reset with :meth:`reset`)."""

    hits: int = 0
    misses: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


#: process-wide counters, observable by benches and tests
CACHE_STATS = SweepCacheStats()


@dataclass
class ResponsePoint:
    """Reduced result of one response-time experiment."""

    config: ExperimentConfig
    summary: HistorySummary
    messages_per_request: float
    total_requests: int
    sim_time_ms: float
    extras: Dict[str, Any] = field(default_factory=dict)
    from_cache: bool = False


@dataclass
class AvailabilityPoint:
    """Reduced result of one measured-availability run."""

    config: AvailabilitySimConfig
    total_requests: int
    rejected: int
    stale_rejected: int
    extras: Dict[str, Any] = field(default_factory=dict)
    from_cache: bool = False

    @property
    def availability(self) -> float:
        if not self.total_requests:
            return 1.0
        return 1.0 - (self.rejected + self.stale_rejected) / self.total_requests

    @property
    def unavailability(self) -> float:
        return 1.0 - self.availability


@dataclass
class CdnPoint:
    """Reduced result of one edge-CDN scenario (see :mod:`repro.edge.cdn`)."""

    config: Any  # CdnScenarioConfig (imported lazily; see _config_kind)
    summary: HistorySummary
    stats: Dict[str, Any]
    region_stats: List[Dict[str, Any]]
    fe_counters: Dict[str, int]
    events_processed: int
    sim_time_ms: float
    budget: Optional[Dict[str, Any]] = None
    extras: Dict[str, Any] = field(default_factory=dict)
    from_cache: bool = False


@dataclass
class ChaosPoint:
    """Reduced result of one chaos run (see :mod:`repro.chaos.campaign`)."""

    config: ChaosRunConfig
    violations: List[Dict[str, Any]]
    stats: Dict[str, Any]
    schedule: List[Dict[str, Any]]  # FaultSchedule JSON form
    extras: Dict[str, Any] = field(default_factory=dict)
    #: deterministic span exports, present when ``config.trace`` is set
    trace_jsonl: Optional[str] = None
    trace_chrome: Optional[str] = None
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations


# -- code / config fingerprints ------------------------------------------------

_code_version: Optional[str] = None


def code_version() -> str:
    """Content hash of the ``repro`` source tree (cached per process).

    Any source change invalidates every cached point — coarse, but it
    guarantees a cached number can never disagree with the code that
    would recompute it.
    """
    global _code_version
    if _code_version is None:
        package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for root, dirs, files in sorted(os.walk(package_dir)):
            dirs[:] = sorted(d for d in dirs if d != "__pycache__")
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name)
                digest.update(os.path.relpath(path, package_dir).encode())
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _code_version = digest.hexdigest()[:16]
    return _code_version


def _config_kind(config: SweepConfig) -> str:
    # Imported lazily: repro.edge.cdn itself imports this package.
    from ..edge.cdn import CdnScenarioConfig

    if isinstance(config, ExperimentConfig):
        return "response"
    if isinstance(config, AvailabilitySimConfig):
        return "availability"
    if isinstance(config, ChaosRunConfig):
        return "chaos"
    if isinstance(config, CdnScenarioConfig):
        return "cdn"
    raise TypeError(
        f"run_sweep takes ExperimentConfig, AvailabilitySimConfig, "
        f"ChaosRunConfig or CdnScenarioConfig, got {type(config).__name__}"
    )


def point_key(config: SweepConfig, collect: Optional[Callable] = None) -> str:
    """Stable cache key: dataclass config + code version (+ collector)."""
    payload = {
        "kind": _config_kind(config),
        "code": code_version(),
        "config": dataclasses.asdict(config),
        "collect": getattr(collect, "__qualname__", None) if collect else None,
    }
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()[:32]


# -- cache directory -----------------------------------------------------------

def cache_dir() -> str:
    """The on-disk cache location (``REPRO_SWEEP_CACHE`` overrides)."""
    return os.environ.get(
        "REPRO_SWEEP_CACHE", os.path.join("results", ".cache")
    )


def clear_cache(path: Optional[str] = None) -> int:
    """Delete all cached sweep points; returns how many were removed."""
    path = path or cache_dir()
    removed = 0
    if os.path.isdir(path):
        for name in os.listdir(path):
            if name.endswith(".json"):
                os.unlink(os.path.join(path, name))
                removed += 1
    return removed


def sweep_workers() -> int:
    """Worker-process count (``REPRO_SWEEP_WORKERS`` overrides)."""
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            logger.warning(
                "ignoring non-numeric REPRO_SWEEP_WORKERS=%r", env
            )
    return os.cpu_count() or 1


# -- point computation (runs in worker processes) -----------------------------

def _compute_point(config: SweepConfig,
                   collect: Optional[Callable]) -> Dict[str, Any]:
    """Run one point and reduce it to a JSON-serialisable dict."""
    if isinstance(config, ExperimentConfig):
        result = run_response_time(config)
        return {
            "kind": "response",
            "summary": dataclasses.asdict(result.summary),
            "messages_per_request": result.messages_per_request,
            "total_requests": result.total_requests,
            "sim_time_ms": result.sim_time_ms,
            "extras": collect(result) if collect is not None else {},
        }
    if isinstance(config, ChaosRunConfig):
        result = run_chaos(config)
        return {
            "kind": "chaos",
            "violations": result.violations,
            "stats": result.stats,
            "schedule": result.schedule.to_json_obj(),
            "trace_jsonl": result.trace_jsonl,
            "trace_chrome": result.trace_chrome,
            "extras": collect(result) if collect is not None else {},
        }
    if _config_kind(config) == "cdn":
        from ..edge.cdn import run_cdn

        result = run_cdn(config)
        return {
            "kind": "cdn",
            "summary": dataclasses.asdict(result.summary),
            "stats": result.stats.to_json_obj(),
            "region_stats": [s.to_json_obj() for s in result.region_stats],
            "fe_counters": result.fe_counters,
            "events_processed": result.events_processed,
            "sim_time_ms": result.sim_time_ms,
            "budget": result.budget,
            "extras": collect(result) if collect is not None else {},
        }
    result = run_availability_sim(config)
    return {
        "kind": "availability",
        "total_requests": result.total_requests,
        "rejected": result.rejected,
        "stale_rejected": result.stale_rejected,
        "extras": collect(result) if collect is not None else {},
    }


def _rebuild_point(config: SweepConfig, data: Dict[str, Any],
                   from_cache: bool) -> Union[ResponsePoint, AvailabilityPoint]:
    if data["kind"] == "response":
        s = data["summary"]
        summary = HistorySummary(
            reads=LatencyStats(**s["reads"]),
            writes=LatencyStats(**s["writes"]),
            overall=LatencyStats(**s["overall"]),
            read_hit_rate=s["read_hit_rate"],
            failures=s["failures"],
            availability=s["availability"],
        )
        return ResponsePoint(
            config=config,
            summary=summary,
            messages_per_request=data["messages_per_request"],
            total_requests=data["total_requests"],
            sim_time_ms=data["sim_time_ms"],
            extras=data.get("extras") or {},
            from_cache=from_cache,
        )
    if data["kind"] == "cdn":
        s = data["summary"]
        return CdnPoint(
            config=config,
            summary=HistorySummary(
                reads=LatencyStats(**s["reads"]),
                writes=LatencyStats(**s["writes"]),
                overall=LatencyStats(**s["overall"]),
                read_hit_rate=s["read_hit_rate"],
                failures=s["failures"],
                availability=s["availability"],
            ),
            stats=data["stats"],
            region_stats=data["region_stats"],
            fe_counters=data["fe_counters"],
            events_processed=data["events_processed"],
            sim_time_ms=data["sim_time_ms"],
            budget=data.get("budget"),
            extras=data.get("extras") or {},
            from_cache=from_cache,
        )
    if data["kind"] == "chaos":
        return ChaosPoint(
            config=config,
            violations=data["violations"],
            stats=data["stats"],
            schedule=data["schedule"],
            extras=data.get("extras") or {},
            trace_jsonl=data.get("trace_jsonl"),
            trace_chrome=data.get("trace_chrome"),
            from_cache=from_cache,
        )
    return AvailabilityPoint(
        config=config,
        total_requests=data["total_requests"],
        rejected=data["rejected"],
        stale_rejected=data["stale_rejected"],
        extras=data.get("extras") or {},
        from_cache=from_cache,
    )


def _load_cached(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path) as fh:
            entry = json.load(fh)
    except (OSError, ValueError):
        return None
    if entry.get("version") != _CACHE_VERSION:
        return None
    return entry.get("point")


def _store_cached(path: str, key: str, data: Dict[str, Any]) -> None:
    try:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump({"version": _CACHE_VERSION, "key": key, "point": data}, fh)
        os.replace(tmp, path)
    except (OSError, TypeError, ValueError):
        # A broken cache write must never fail the sweep; the point is
        # simply recomputed next time.
        logger.warning("could not cache sweep point at %s", path, exc_info=True)


def _picklable(obj: Any) -> bool:
    if obj is None:
        return True
    try:
        pickle.dumps(obj)
        return True
    except Exception:  # noqa: BLE001 - any pickling failure means "no"
        return False


# -- the runner ----------------------------------------------------------------

def run_sweep(
    configs: Sequence[SweepConfig],
    *,
    collect: Optional[Callable] = None,
    workers: Optional[int] = None,
    cache: bool = True,
    cache_path: Optional[str] = None,
) -> List[Union[ResponsePoint, AvailabilityPoint]]:
    """Run every config point, in parallel, with on-disk caching.

    Returns one reduced point per config, in config order.  Response and
    availability configs may be mixed freely — each point dispatches on
    its config type.

    Parameters
    ----------
    collect:
        Optional ``fn(full_result) -> dict`` evaluated in the worker,
        for bench-specific counters the reduced point does not carry
        (e.g. write-suppression counts).  Must be a module-level
        function to cross the process boundary; otherwise the sweep
        silently falls back to in-process execution.
    workers:
        Process count; default :func:`sweep_workers`.  ``1`` runs
        everything inline (no pool, no pickling).
    cache, cache_path:
        Toggle / relocate the on-disk cache.
    """
    configs = list(configs)
    for config in configs:
        _config_kind(config)  # validate types up front
    path = cache_path or cache_dir()
    points: List[Optional[Union[ResponsePoint, AvailabilityPoint]]] = [None] * len(configs)

    misses: List[int] = []
    keys: List[Optional[str]] = [None] * len(configs)
    if cache:
        os.makedirs(path, exist_ok=True)
        for i, config in enumerate(configs):
            keys[i] = point_key(config, collect)
            data = _load_cached(os.path.join(path, f"{keys[i]}.json"))
            if data is not None:
                points[i] = _rebuild_point(config, data, from_cache=True)
            else:
                misses.append(i)
    else:
        misses = list(range(len(configs)))

    hits = len(configs) - len(misses)
    CACHE_STATS.hits += hits
    CACHE_STATS.misses += len(misses)

    if misses:
        n_workers = workers if workers is not None else sweep_workers()
        n_workers = min(n_workers, len(misses))
        parallel = (
            n_workers > 1
            and len(misses) > 1
            and _picklable(collect)
            and all(_picklable(configs[i]) for i in misses)
        )
        if parallel:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                computed = list(
                    pool.map(
                        _compute_point,
                        [configs[i] for i in misses],
                        [collect] * len(misses),
                    )
                )
        else:
            computed = [_compute_point(configs[i], collect) for i in misses]
        for i, data in zip(misses, computed):
            points[i] = _rebuild_point(configs[i], data, from_cache=False)
            if cache:
                _store_cached(os.path.join(path, f"{keys[i]}.json"), keys[i], data)

    message = (
        f"sweep: {len(configs)} points, {hits} cache hits, "
        f"{len(misses)} computed"
        + (f" ({n_workers} workers)" if misses else "")
    )
    logger.info(message)
    if os.environ.get("REPRO_SWEEP_VERBOSE"):
        print(f"[repro.sweeps] {message}", file=sys.stderr)
    return points  # type: ignore[return-value]
