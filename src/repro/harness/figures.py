"""One-call generators for every figure's data (used by the CLI).

Each function returns ``(x_label, x_values, {series_name: [y ...]})`` —
the exact series the corresponding paper figure plots.  The benchmark
suite under ``benchmarks/`` runs the same experiments with assertions;
these functions exist so the command line (``python -m repro``) can
regenerate any figure at arbitrary scale.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..analysis.availability import protocol_unavailability
from ..analysis.overhead import protocol_messages_per_request
from .experiment import ExperimentConfig
from .metrics import HistorySummary
from .sweeps import run_sweep

__all__ = ["FIGURES", "generate_figure"]

RESPONSE_PROTOCOLS = ["dqvl", "majority", "primary_backup", "rowa", "rowa_async"]
#: extra Figure 6/7 series: DQVL with a non-default IQS shape surfaced
#: by ``repro tune`` — a 3x3 grid over the 9 edges (reads and writes
#: touch 3 and 5 IQS nodes instead of 5 and 5), deployed through the
#: declarative spec API so all derived defaults stay intact
TUNED_SERIES = "dqvl_tuned"
TUNED_DEPLOY_KWARGS = {"iqs_spec": "grid:3x3"}
AVAILABILITY_PROTOCOLS = [
    "dqvl", "majority", "grid", "rowa",
    "rowa_async", "rowa_async_no_stale", "primary_backup",
]
OVERHEAD_PROTOCOLS = ["dqvl", "majority", "grid", "rowa", "rowa_async", "primary_backup"]

FigureData = Tuple[str, Sequence, Dict[str, List[float]]]


def _response_config(config_for, label: str, *x) -> ExperimentConfig:
    """Build one series point; the tuned series is dqvl + spec kwargs."""
    if label == TUNED_SERIES:
        cfg: ExperimentConfig = config_for("dqvl", *x)
        cfg.deploy_kwargs = dict(TUNED_DEPLOY_KWARGS)
        return cfg
    return config_for(label, *x)


def _response_series(
    x_label: str,
    x_values: Sequence[float],
    config_for,
    ops: int,
    seed: int,
) -> FigureData:
    """One parallel cached sweep over the protocol × x-value grid."""
    labels = RESPONSE_PROTOCOLS + [TUNED_SERIES]
    configs: List[ExperimentConfig] = []
    for label in labels:
        for x in x_values:
            cfg = _response_config(config_for, label, x)
            cfg.ops_per_client = ops
            cfg.seed = seed
            configs.append(cfg)
    points = iter(run_sweep(configs))
    series: Dict[str, List[float]] = {
        label: [next(points).summary.overall.mean for _ in x_values]
        for label in labels
    }
    return (x_label, x_values, series)


def _per_protocol_panel(config_for, ops: int, seed: int) -> FigureData:
    """The Figure 6(a)/7(a) shape: one bar group per protocol."""
    labels = RESPONSE_PROTOCOLS + [TUNED_SERIES]
    configs = []
    for label in labels:
        cfg = _response_config(config_for, label)
        cfg.ops_per_client = ops
        cfg.seed = seed
        configs.append(cfg)
    series: Dict[str, List[float]] = {}
    for label, point in zip(labels, run_sweep(configs)):
        series[label] = point.summary.row()
    return ("metric", list(HistorySummary.ROW_COLUMNS), series)


def fig6a(ops: int = 150, seed: int = 2005) -> FigureData:
    """Per-protocol response time at the 5 % write rate (bar chart)."""
    return _per_protocol_panel(
        lambda protocol: ExperimentConfig(protocol=protocol, write_ratio=0.05),
        ops,
        seed,
    )


def fig6b(ops: int = 150, seed: int = 2005) -> FigureData:
    ratios = [0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0]
    return _response_series(
        "write_ratio",
        ratios,
        lambda protocol, w: ExperimentConfig(protocol=protocol, write_ratio=w),
        ops,
        seed,
    )


def fig7a(ops: int = 150, seed: int = 77) -> FigureData:
    return _per_protocol_panel(
        lambda protocol: ExperimentConfig(
            protocol=protocol, write_ratio=0.05, locality=0.9
        ),
        ops,
        seed,
    )


def fig7b(ops: int = 150, seed: int = 77) -> FigureData:
    localities = [0.0, 0.25, 0.5, 0.7, 0.9, 1.0]
    return _response_series(
        "locality",
        localities,
        lambda protocol, l: ExperimentConfig(
            protocol=protocol, write_ratio=0.05, locality=l
        ),
        ops,
        seed,
    )


def fig8a(n: int = 15, p: float = 0.01, **_: object) -> FigureData:
    ratios = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]
    series = {
        protocol: [protocol_unavailability(protocol, w, n, p) for w in ratios]
        for protocol in AVAILABILITY_PROTOCOLS
    }
    return ("write_ratio", ratios, series)


def fig8b(w: float = 0.25, p: float = 0.01, **_: object) -> FigureData:
    sizes = [3, 5, 7, 9, 11, 15, 19, 21]
    series = {
        protocol: [protocol_unavailability(protocol, w, n, p) for n in sizes]
        for protocol in AVAILABILITY_PROTOCOLS
    }
    return ("replicas", sizes, series)


def fig9a(n: int = 9, **_: object) -> FigureData:
    ratios = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]
    series = {
        protocol: [protocol_messages_per_request(protocol, w, n) for w in ratios]
        for protocol in OVERHEAD_PROTOCOLS
    }
    return ("write_ratio", ratios, series)


def fig9b(n_iqs: int = 5, w: float = 0.5, **_: object) -> FigureData:
    sizes = [5, 9, 15, 21, 27]
    series = {
        "dqvl_fixed_iqs": [
            protocol_messages_per_request("dqvl", w, n, n_iqs=n_iqs, n_oqs=n)
            for n in sizes
        ],
        "majority": [
            protocol_messages_per_request("majority", w, n) for n in sizes
        ],
        "rowa": [protocol_messages_per_request("rowa", w, n) for n in sizes],
    }
    return ("n_oqs", sizes, series)


FIGURES = {
    "fig6a": fig6a,
    "fig6b": fig6b,
    "fig7a": fig7a,
    "fig7b": fig7b,
    "fig8a": fig8a,
    "fig8b": fig8b,
    "fig9a": fig9a,
    "fig9b": fig9b,
}


def generate_figure(name: str, **kwargs) -> FigureData:
    """Generate the named figure's series (see :data:`FIGURES`)."""
    if name not in FIGURES:
        raise KeyError(f"unknown figure {name!r}; choose from {sorted(FIGURES)}")
    return FIGURES[name](**kwargs)
