"""One-shot evaluation report: every figure, one markdown file.

``python -m repro report`` regenerates all eight figure panels (and,
optionally, the measured-availability cross-check), renders each as a
table plus an ASCII chart, and writes a self-contained markdown report
— the quickest way to re-derive EXPERIMENTS.md's numbers on a new
machine or after a protocol change.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

from .charts import ascii_chart
from .figures import FIGURES, generate_figure
from .reporting import format_series

__all__ = ["generate_report"]

_DESCRIPTIONS = {
    "fig6a": "Response time per protocol at the 5% write rate (ms).",
    "fig6b": "Overall response time vs write ratio (ms).",
    "fig7a": "Response time per protocol at 90% access locality (ms).",
    "fig7b": "Overall response time vs access locality (ms).",
    "fig8a": "Unavailability vs write ratio (n=15, p=0.01; analytic).",
    "fig8b": "Unavailability vs replica count (w=0.25, p=0.01; analytic).",
    "fig9a": "Messages per request vs write ratio (n=9; analytic).",
    "fig9b": "Messages per request vs OQS size, IQS fixed at 5 (analytic).",
}

_SIMULATED = ("fig6a", "fig6b", "fig7a", "fig7b")


def _render_figure(name: str, ops: int, charts: bool) -> str:
    kwargs = {"ops": ops} if name in _SIMULATED else {}
    x_label, x_values, series = generate_figure(name, **kwargs)
    parts: List[str] = [f"## {name}", "", _DESCRIPTIONS.get(name, ""), ""]
    parts.append("```")
    parts.append(format_series(x_label, x_values, sorted(series.items())))
    parts.append("```")
    if charts:
        numeric = all(isinstance(x, (int, float)) for x in x_values)
        xs = list(x_values) if numeric else list(range(len(x_values)))
        parts.append("")
        parts.append("```")
        parts.append(
            ascii_chart(
                xs, series,
                log_y=name.startswith("fig8"),
                x_label=x_label,
                y_label="unavail" if name.startswith("fig8") else "y",
            )
        )
        parts.append("```")
    parts.append("")
    return "\n".join(parts)


def generate_report(
    out_path: str = "results/REPORT.md",
    ops: int = 150,
    charts: bool = True,
    figures: Optional[List[str]] = None,
    measured_availability: bool = False,
) -> str:
    """Write the full evaluation report; returns the output path."""
    chosen = figures or sorted(FIGURES)
    unknown = [f for f in chosen if f not in FIGURES]
    if unknown:
        raise KeyError(f"unknown figures: {unknown}")

    started = time.time()
    sections = [
        "# Dual-Quorum Replication — regenerated evaluation",
        "",
        f"Figures: {', '.join(chosen)}.  Simulated panels use "
        f"{ops} operations per client on the paper's 9-edge topology; "
        "analytic panels are exact.  See EXPERIMENTS.md for the claims "
        "each figure is checked against.",
        "",
    ]
    for name in chosen:
        sections.append(_render_figure(name, ops, charts))

    if measured_availability:
        from ..analysis.availability import protocol_unavailability
        from .availability import AvailabilitySimConfig, run_availability_sim

        rows = []
        for protocol in ("dqvl", "majority", "rowa", "primary_backup",
                         "rowa_async", "rowa_async_no_stale"):
            res = run_availability_sim(
                AvailabilitySimConfig(
                    protocol=protocol, write_ratio=0.25, num_replicas=5,
                    p=0.15, epochs=200, seed=3, max_attempts=4,
                )
            )
            rows.append(
                [protocol, res.unavailability,
                 protocol_unavailability(protocol, 0.25, 5, 0.15)]
            )
        from .reporting import format_table

        sections.append("## measured availability (simulation)\n")
        sections.append("```")
        sections.append(
            format_table(
                ["protocol", "measured unavail", "analytic unavail"], rows
            )
        )
        sections.append("```\n")

    sections.append(
        f"---\n_generated in {time.time() - started:.1f}s wall clock_"
    )
    out_dir = os.path.dirname(out_path)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(out_path, "w") as fh:
        fh.write("\n".join(sections) + "\n")
    return out_path
