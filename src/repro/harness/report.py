"""Reporting: plain-text tables/series and the one-shot markdown report.

The formatting half renders the rows/series each paper figure plots —
consistent, readable output for pytest, EXPERIMENTS.md and the CLI.
The report half (``python -m repro report``) regenerates all eight
figure panels (and, optionally, the measured-availability cross-check),
renders each as a table plus an ASCII chart, and writes a
self-contained markdown report — the quickest way to re-derive
EXPERIMENTS.md's numbers on a new machine or after a protocol change.
"""

from __future__ import annotations

import os
import time
from typing import Iterable, List, Optional, Sequence

__all__ = [
    "format_table",
    "format_series",
    "log_axis_note",
    "generate_report",
]


# -- tables and series ---------------------------------------------------------

def _format_cell(value, width: int) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
            text = f"{value:.3e}"
        else:
            text = f"{value:.3f}".rstrip("0").rstrip(".")
            if text in ("", "-"):
                text = "0"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    rows = [list(r) for r in rows]
    widths = [len(h) for h in headers]
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for i, cell in enumerate(row):
            text = _format_cell(cell, 0).strip()
            widths[i] = max(widths[i], len(text))
            rendered.append(text)
        rendered_rows.append(rendered)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(rendered, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Sequence[tuple],
    title: Optional[str] = None,
) -> str:
    """Render named series against an x axis (one column per series).

    ``series`` is a list of ``(name, [y values])`` pairs.
    """
    headers = [x_label] + [name for name, _ in series]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [ys[i] for _, ys in series])
    return format_table(headers, rows, title=title)


def log_axis_note(values: Iterable[float]) -> str:
    """A one-line reminder of the log-scale span (for unavailability)."""
    values = [v for v in values if v > 0]
    if not values:
        return "(all values zero)"
    import math

    low = min(values)
    high = max(values)
    return f"(log scale: spans 1e{math.floor(math.log10(low))} .. 1e{math.ceil(math.log10(high))})"


# -- the one-shot markdown report ---------------------------------------------

_DESCRIPTIONS = {
    "fig6a": "Response time per protocol at the 5% write rate (ms).",
    "fig6b": "Overall response time vs write ratio (ms).",
    "fig7a": "Response time per protocol at 90% access locality (ms).",
    "fig7b": "Overall response time vs access locality (ms).",
    "fig8a": "Unavailability vs write ratio (n=15, p=0.01; analytic).",
    "fig8b": "Unavailability vs replica count (w=0.25, p=0.01; analytic).",
    "fig9a": "Messages per request vs write ratio (n=9; analytic).",
    "fig9b": "Messages per request vs OQS size, IQS fixed at 5 (analytic).",
}

_SIMULATED = ("fig6a", "fig6b", "fig7a", "fig7b")


def _render_figure(name: str, ops: int, charts: bool) -> str:
    from .charts import ascii_chart
    from .figures import generate_figure

    kwargs = {"ops": ops} if name in _SIMULATED else {}
    x_label, x_values, series = generate_figure(name, **kwargs)
    parts: List[str] = [f"## {name}", "", _DESCRIPTIONS.get(name, ""), ""]
    parts.append("```")
    parts.append(format_series(x_label, x_values, sorted(series.items())))
    parts.append("```")
    if charts:
        numeric = all(isinstance(x, (int, float)) for x in x_values)
        xs = list(x_values) if numeric else list(range(len(x_values)))
        parts.append("")
        parts.append("```")
        parts.append(
            ascii_chart(
                xs, series,
                log_y=name.startswith("fig8"),
                x_label=x_label,
                y_label="unavail" if name.startswith("fig8") else "y",
            )
        )
        parts.append("```")
    parts.append("")
    return "\n".join(parts)


def generate_report(
    out_path: str = "results/REPORT.md",
    ops: int = 150,
    charts: bool = True,
    figures: Optional[List[str]] = None,
    measured_availability: bool = False,
) -> str:
    """Write the full evaluation report; returns the output path.

    The simulated panels run through :mod:`repro.harness.figures`, which
    executes each protocol/parameter grid via the parallel cached sweep
    runner (:mod:`repro.harness.sweeps`), so a re-run after an analytic
    or docs change costs seconds, not minutes.
    """
    from .figures import FIGURES

    chosen = figures or sorted(FIGURES)
    unknown = [f for f in chosen if f not in FIGURES]
    if unknown:
        raise KeyError(f"unknown figures: {unknown}")

    started = time.time()
    sections = [
        "# Dual-Quorum Replication — regenerated evaluation",
        "",
        f"Figures: {', '.join(chosen)}.  Simulated panels use "
        f"{ops} operations per client on the paper's 9-edge topology; "
        "analytic panels are exact.  See EXPERIMENTS.md for the claims "
        "each figure is checked against.",
        "",
    ]
    for name in chosen:
        sections.append(_render_figure(name, ops, charts))

    if measured_availability:
        from ..analysis.availability import protocol_unavailability
        from .availability import AvailabilitySimConfig
        from .sweeps import run_sweep

        protocols = ["dqvl", "majority", "rowa", "primary_backup",
                     "rowa_async", "rowa_async_no_stale"]
        points = run_sweep([
            AvailabilitySimConfig(
                protocol=protocol, write_ratio=0.25, num_replicas=5,
                p=0.15, epochs=200, seed=3, max_attempts=4,
            )
            for protocol in protocols
        ])
        rows = [
            [protocol, point.unavailability,
             protocol_unavailability(protocol, 0.25, 5, 0.15)]
            for protocol, point in zip(protocols, points)
        ]
        sections.append("## measured availability (simulation)\n")
        sections.append("```")
        sections.append(
            format_table(
                ["protocol", "measured unavail", "analytic unavail"], rows
            )
        )
        sections.append("```\n")

    sections.append(
        f"---\n_generated in {time.time() - started:.1f}s wall clock_"
    )
    out_dir = os.path.dirname(out_path)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(out_path, "w") as fh:
        fh.write("\n".join(sections) + "\n")
    return out_path
