"""Configuration for the adaptive resilience layer."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResilienceConfig"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Tunables for the resilience layer (frozen: picklable/hashable, so
    it can ride inside run configs that feed the sweep cache).

    Attributes
    ----------
    rtt_window:
        How many recent reply RTTs the failure detector keeps for its
        quantile estimates (one bounded window per detector).
    min_rtt_samples:
        Below this many samples the detector refuses to estimate and
        QRPC falls back to its configured timeout schedule.
    suspicion_threshold:
        Suspicion level (accrued across consecutive timeout
        observations) at which a replica counts as *suspected* and is
        deprioritized in quorum sampling and hedging.
    timeout_quantile / timeout_multiplier / min_timeout_ms:
        Adaptive per-round QRPC timeout = ``quantile(timeout_quantile)
        * timeout_multiplier`` over the observed RTT window, clamped to
        ``[min_timeout_ms, max_timeout_ms]`` (the cap comes from the
        QRPC schedule).
    hedging / hedge_quantile:
        When a round has been outstanding for the detector's
        ``hedge_quantile`` RTT estimate without completing, send one
        backup probe to an extra (preferably unsuspected) replica.
    jittered_backoff:
        Replace QRPC's deterministic exponential backoff with
        decorrelated jitter (``uniform(base, prev * 3)``, capped) drawn
        from a dedicated per-node RNG stream.
    breaker_failure_threshold / breaker_cooldown_ms:
        Circuit breaker: consecutive quorum failures that trip the
        breaker open, and how long it stays open before letting a
        half-open probe through.
    degraded_max_staleness_ms:
        The *advertised* staleness bound for degraded reads: a front
        end serves a locally remembered value only while its
        age-of-information is within this bound, and every degraded
        reply carries both the age and the bound.
    shed_retry_after_ms:
        Fallback retry-after hint for shed writes when the breaker
        cannot compute a remaining cooldown.
    shed_retry_budget:
        How many times an application client re-submits a shed write
        (waiting out each retry-after) before reporting failure.
    catchup / catchup_retry_ms:
        Post-crash catch-up: a recovered OQS node revalidates its
        pre-crash cache against an IQS read quorum before serving local
        reads again, retrying roughly every ``catchup_retry_ms`` while
        the quorum is unreachable.
    """

    rtt_window: int = 64
    min_rtt_samples: int = 4
    suspicion_threshold: float = 2.0
    timeout_quantile: float = 0.95
    timeout_multiplier: float = 2.0
    min_timeout_ms: float = 10.0
    hedging: bool = True
    hedge_quantile: float = 0.9
    jittered_backoff: bool = True
    breaker_failure_threshold: int = 2
    breaker_cooldown_ms: float = 1_500.0
    degraded_max_staleness_ms: float = 8_000.0
    shed_retry_after_ms: float = 500.0
    shed_retry_budget: int = 3
    catchup: bool = True
    catchup_retry_ms: float = 500.0

    def __post_init__(self) -> None:
        if self.rtt_window < 1 or self.min_rtt_samples < 1:
            raise ValueError("rtt_window and min_rtt_samples must be >= 1")
        if not 0.0 < self.timeout_quantile <= 1.0:
            raise ValueError("timeout_quantile must be in (0, 1]")
        if not 0.0 < self.hedge_quantile <= 1.0:
            raise ValueError("hedge_quantile must be in (0, 1]")
        if self.timeout_multiplier < 1.0:
            raise ValueError("timeout_multiplier must be >= 1")
        if self.suspicion_threshold <= 0:
            raise ValueError("suspicion_threshold must be positive")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if min(self.breaker_cooldown_ms, self.degraded_max_staleness_ms,
               self.shed_retry_after_ms, self.catchup_retry_ms) <= 0:
            raise ValueError("resilience intervals must be positive")
        if self.shed_retry_budget < 0:
            raise ValueError("shed_retry_budget must be non-negative")
