"""A deterministic circuit breaker for front-end graceful degradation.

Classic three-state machine, driven entirely by the simulated clock:

* **closed** — requests flow; consecutive failures are counted.
* **open** — tripped after ``failure_threshold`` consecutive failures;
  requests are refused (the caller serves degraded reads / sheds writes)
  until ``cooldown_ms`` has elapsed.
* **half-open** — after the cooldown, exactly one probe request is let
  through; its outcome closes the breaker or re-opens it for another
  cooldown.

No randomness anywhere: with the same sequence of (time, outcome)
observations the breaker takes the same transitions in every run.
"""

from __future__ import annotations

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-front-end breaker guarding one class of storage operations."""

    def __init__(self, now_fn, failure_threshold: int = 2,
                 cooldown_ms: float = 1_500.0) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_ms <= 0:
            raise ValueError("cooldown_ms must be positive")
        self._now = now_fn
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self.state = CLOSED
        self._failures = 0
        self._opened_at = float("-inf")
        #: closed -> open transitions (observability counter)
        self.trips = 0

    def allow(self) -> bool:
        """May a request be attempted right now?

        In the open state this flips to half-open (and admits the single
        probe) once the cooldown has elapsed.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN and self._now() - self._opened_at >= self.cooldown_ms:
            self.state = HALF_OPEN
            return True
        # OPEN within cooldown, or HALF_OPEN with the probe outstanding.
        return False

    def record_success(self) -> None:
        self.state = CLOSED
        self._failures = 0

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            # The probe failed: re-open for another full cooldown.
            self.state = OPEN
            self._opened_at = self._now()
            return
        self._failures += 1
        if self.state == CLOSED and self._failures >= self.failure_threshold:
            self.state = OPEN
            self._opened_at = self._now()
            self.trips += 1

    def retry_after_ms(self, fallback: float = 500.0) -> float:
        """How long a shed caller should wait before retrying: the
        remaining cooldown when open, else *fallback*."""
        if self.state == OPEN:
            remaining = self.cooldown_ms - (self._now() - self._opened_at)
            if remaining > 0:
                return remaining
        return fallback
