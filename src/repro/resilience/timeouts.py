"""Derive QRPC timeout schedules from a scenario's delay distribution.

The historical defaults (``initial_timeout_ms=400``, ``max=6400``) were
tuned for nothing in particular: far too loose for a LAN topology (where
a lost message should be retried within tens of milliseconds) and too
tight for a degraded WAN with large jitter.  Instead, compute the
schedule from the same :class:`~repro.edge.topology.EdgeTopologyConfig`
the deployment uses, so the first-round timeout tracks the worst-case
round trip actually possible in the configured network.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["derive_qrpc_timeouts"]


def derive_qrpc_timeouts(topology, backoff: float = 2.0, rounds: int = 4,
                         safety: float = 2.0) -> Tuple[float, float]:
    """Return ``(initial_timeout_ms, max_timeout_ms)`` for *topology*.

    ``initial`` covers one full worst-case round trip (the largest
    one-way delay in the topology plus jitter and processing, doubled)
    times a *safety* factor; ``max`` is where the exponential schedule
    lands after *rounds* backoff steps, so retransmissions still have
    room to stretch under congestion/faults.
    """
    one_way = max(topology.lan_ms, topology.client_wan_ms, topology.server_wan_ms)
    worst_rtt = 2.0 * (one_way + topology.jitter_ms + topology.processing_ms)
    initial = max(1.0, worst_rtt * safety)
    return initial, initial * (backoff ** rounds)
