"""Adaptive resilience layer (PR 7).

The paper's availability claims rest on the protocol *reacting* to
faults, not merely surviving them.  This package supplies the reactive
machinery, wired through the RPC, protocol, node, and edge layers:

* :class:`FailureDetector` — per-node, seed-deterministic,
  phi-accrual-style suspicion over QRPC reply/timeout observations,
  with RTT-quantile estimates feeding adaptive timeouts and hedging.
* :class:`NodeResilience` — bundles the detector with the dedicated
  per-purpose RNG streams for suspect-avoiding quorum selection,
  hedged requests, and decorrelated-jitter backoff.
* :class:`CircuitBreaker` — the front-end state machine behind degraded
  reads and shed writes.
* :func:`derive_qrpc_timeouts` — QRPC timeout schedules computed from
  the scenario's delay distribution instead of the historical 400ms.
* :class:`ResilienceConfig` — all tunables, frozen.

Everything runs on the simulated clock and draws only from string-seeded
streams: enabling the layer changes behaviour, never determinism.
"""

from .breaker import CircuitBreaker
from .config import ResilienceConfig
from .detector import FailureDetector
from .runtime import NodeResilience
from .timeouts import derive_qrpc_timeouts

__all__ = [
    "CircuitBreaker",
    "FailureDetector",
    "NodeResilience",
    "ResilienceConfig",
    "derive_qrpc_timeouts",
]
