"""Seed-deterministic phi-accrual-style failure detection.

One :class:`FailureDetector` per observing node, fed exclusively by that
node's QRPC traffic: every reply contributes an RTT sample (on the
**simulated** clock — wall clock never enters the simulation), every
RPC timeout raises the target's suspicion level, and the next reply
clears it.

This is *phi-accrual-style* rather than textbook phi-accrual: the
classic detector (Hayashibara et al.) consumes periodic heartbeats and
computes phi from the inter-arrival distribution.  Edge clients have no
heartbeat stream — their only evidence is request/reply traffic — so
suspicion here accrues one unit per timed-out RPC, weighted by how far
the timed-out interval already exceeded the target's smoothed RTT
expectation (a timeout that outlived ``srtt + 4*rttvar`` several times
over is stronger evidence than one barely past it).  The shape matches
phi-accrual's purpose: a continuous suspicion level with a threshold,
not a binary alive/dead bit.

Everything is a pure function of observation order and the sim clock,
so same-seed runs produce identical detector state; the detector draws
no randomness at all.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from .config import ResilienceConfig

__all__ = ["FailureDetector"]


class _TargetStats:
    """Jacobson/Karels smoothed RTT plus accrued suspicion for one target."""

    __slots__ = ("srtt", "rttvar", "suspicion", "last_reply_at")

    def __init__(self) -> None:
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.suspicion: float = 0.0
        self.last_reply_at: Optional[float] = None


class FailureDetector:
    """Per-node failure detector over QRPC reply/timeout observations."""

    def __init__(self, now_fn, config: Optional[ResilienceConfig] = None) -> None:
        self._now = now_fn
        self.config = config or ResilienceConfig()
        self._targets: Dict[str, _TargetStats] = {}
        #: bounded window of recent RTTs across all targets, for the
        #: adaptive-timeout and hedging quantile estimates
        self._rtts: Deque[float] = deque(maxlen=self.config.rtt_window)
        #: healthy -> suspected transitions (observability counter)
        self.suspicions = 0

    # -- observations -------------------------------------------------------

    def observe_reply(self, target: str, rtt_ms: float) -> None:
        """A reply from *target* arrived after *rtt_ms* of simulated time."""
        st = self._targets.setdefault(target, _TargetStats())
        if st.srtt is None:
            st.srtt = rtt_ms
            st.rttvar = rtt_ms / 2.0
        else:
            # Jacobson/Karels EWMA (alpha=1/8, beta=1/4), the standard
            # deterministic RTT estimator.
            st.rttvar += 0.25 * (abs(st.srtt - rtt_ms) - st.rttvar)
            st.srtt += 0.125 * (rtt_ms - st.srtt)
        st.suspicion = 0.0
        st.last_reply_at = self._now()
        self._rtts.append(rtt_ms)

    def observe_timeout(self, target: str, interval_ms: float) -> None:
        """An RPC to *target* timed out after waiting *interval_ms*."""
        st = self._targets.setdefault(target, _TargetStats())
        was_suspect = self.is_suspect(target)
        expected = self.expected_rtt(target)
        increment = 1.0
        if expected is not None and expected > 0:
            # Longer timed-out waits are stronger evidence; never weaker
            # than one unit so repeated short-fuse timeouts still accrue.
            increment = max(1.0, min(4.0, interval_ms / expected))
        st.suspicion += increment
        if not was_suspect and self.is_suspect(target):
            self.suspicions += 1

    # -- queries ------------------------------------------------------------

    def expected_rtt(self, target: str) -> Optional[float]:
        """``srtt + 4*rttvar`` for *target*, or None before any reply."""
        st = self._targets.get(target)
        if st is None or st.srtt is None:
            return None
        return st.srtt + 4.0 * st.rttvar

    def suspicion(self, target: str) -> float:
        st = self._targets.get(target)
        return st.suspicion if st is not None else 0.0

    def is_suspect(self, target: str) -> bool:
        return self.suspicion(target) >= self.config.suspicion_threshold

    def rtt_quantile(self, q: float) -> Optional[float]:
        """The *q*-quantile of the recent-RTT window (nearest-rank), or
        None while fewer than ``min_rtt_samples`` samples exist."""
        if len(self._rtts) < self.config.min_rtt_samples:
            return None
        ordered = sorted(self._rtts)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]

    def timeout_for(self, fallback: float, cap: float) -> float:
        """Adaptive per-round QRPC timeout from observed RTT quantiles.

        Falls back to the configured schedule until enough samples exist;
        never below ``min_timeout_ms`` and never above *cap*.
        """
        estimate = self.rtt_quantile(self.config.timeout_quantile)
        if estimate is None:
            return min(fallback, cap)
        adaptive = estimate * self.config.timeout_multiplier
        return min(max(adaptive, self.config.min_timeout_ms), cap)

    def hedge_delay(self, interval_ms: float) -> Optional[float]:
        """How long to wait before sending a backup probe this round.

        Returns the detector's ``hedge_quantile`` RTT estimate, or None
        when no estimate exists or hedging could not fire before the
        round's own timeout anyway.
        """
        estimate = self.rtt_quantile(self.config.hedge_quantile)
        if estimate is None or estimate >= interval_ms:
            return None
        return estimate
