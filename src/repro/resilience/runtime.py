"""Per-node resilience runtime: detector + dedicated RNG streams.

One :class:`NodeResilience` instance is attached to each node that
issues quorum calls (DQVL/basic-DQ store clients and OQS nodes).  It
bundles the node's failure detector with the three randomized policies
the resilience layer adds — suspect-avoiding quorum selection, hedge
target choice, and decorrelated-jitter backoff — each drawing from its
own string-seeded stream (``resil-select:{seed}:{node_id}`` etc.), so:

* enabling resilience never consumes a draw from the simulator's shared
  ``sim.rng`` (baseline runs stay byte-identical per seed), and
* the streams are independent of each other — adding a hedge cannot
  shift which quorum the next retransmission samples.

CPython seeds ``random.Random`` from strings via SHA-512, so these
streams are stable across processes and platforms regardless of
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Optional, Sequence

from .config import ResilienceConfig
from .detector import FailureDetector

__all__ = ["NodeResilience"]


class NodeResilience:
    """Failure detector plus resilience policy state for one node."""

    def __init__(self, sim, node_id: str,
                 config: Optional[ResilienceConfig] = None) -> None:
        self.sim = sim
        self.node_id = node_id
        self.config = config or ResilienceConfig()
        self.detector = FailureDetector(lambda: sim.now, self.config)
        seed = sim.seed
        self._select_rng = random.Random(f"resil-select:{seed}:{node_id}")
        self._hedge_rng = random.Random(f"resil-hedge:{seed}:{node_id}")
        self._backoff_rng = random.Random(f"resil-backoff:{seed}:{node_id}")
        #: observability counters
        self.hedges_sent = 0
        self.adaptive_rounds = 0

    # -- timeouts ------------------------------------------------------------

    def round_timeout(self, fallback: float, cap: float) -> float:
        """First-round timeout: adaptive when the detector has enough
        RTT samples, else the configured *fallback*."""
        timeout = self.detector.timeout_for(fallback, cap)
        if timeout != min(fallback, cap):
            self.adaptive_rounds += 1
        return timeout

    def next_interval(self, prev: float, base: float, cap: float) -> float:
        """Next retransmission interval after a timed-out round.

        Decorrelated jitter (the AWS "exp backoff and jitter" variant):
        ``uniform(base, prev * 3)`` capped — retransmission storms from
        many clients decorrelate instead of synchronising on the
        deterministic ``prev * backoff`` ladder.
        """
        if not self.config.jittered_backoff:
            return min(prev * 2.0, cap)
        return min(cap, self._backoff_rng.uniform(base, max(base, prev * 3.0)))

    # -- quorum selection ----------------------------------------------------

    def sample_quorum(self, system, mode: str,
                      prefer: Optional[str] = None) -> FrozenSet[str]:
        """A minimal quorum biased away from suspected replicas.

        Samples normally (from the dedicated selection stream, *not*
        ``sim.rng``), then greedily swaps suspected members for healthy
        non-members while the quorum property is preserved.  A suspected
        *prefer* target is dropped — the local replica loses its
        first-hop privilege while the detector distrusts it.
        """
        det = self.detector
        if prefer is not None and det.is_suspect(prefer):
            prefer = None
        if mode == "READ":
            quorum = set(system.sample_read_quorum(self._select_rng, prefer=prefer))
            is_quorum = system.is_read_quorum
        else:
            quorum = set(system.sample_write_quorum(self._select_rng, prefer=prefer))
            is_quorum = system.is_write_quorum
        suspects = sorted(t for t in quorum if det.is_suspect(t))
        if suspects:
            healthy_outside = sorted(
                t for t in system.nodes
                if t not in quorum and not det.is_suspect(t)
            )
            for member in suspects:
                for candidate in healthy_outside:
                    trial = (quorum - {member}) | {candidate}
                    if is_quorum(trial):
                        quorum = trial
                        healthy_outside.remove(candidate)
                        break
        return frozenset(quorum)

    # -- hedging -------------------------------------------------------------

    def hedge_delay(self, interval_ms: float) -> Optional[float]:
        if not self.config.hedging:
            return None
        return self.detector.hedge_delay(interval_ms)

    def pick_hedge(self, system, targets: FrozenSet[str],
                   replies: Dict) -> Optional[str]:
        """The backup replica for a slow round: a system member not yet
        targeted (and not already a responder), unsuspected candidates
        first.  None when every member is already in play."""
        det = self.detector
        candidates = [t for t in sorted(system.nodes)
                      if t not in targets and t not in replies]
        if not candidates:
            return None
        healthy = [t for t in candidates if not det.is_suspect(t)]
        pool = healthy or candidates
        return self._hedge_rng.choice(pool)
