"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure``       regenerate any paper figure's series
                 (fig6a fig6b fig7a fig7b fig8a fig8b fig9a fig9b)
``run``          one response-time experiment with explicit parameters
``tune``         autotune (IQS, OQS) quorum shapes: Pareto frontier +
                 simulator cross-check
``availability`` measured availability under Bernoulli outages
``chaos``        randomized chaos campaign with invariant checking
``explore``      systematic schedule-space exploration (mini model checker)
``trace``        traced run exporting a causal op→round→message timeline
``why``          explain latency: critical paths, phase budgets, perf gate
``protocols``    list the available protocols

Examples::

    python -m repro figure fig7b
    python -m repro figure fig8a --json
    python -m repro run --protocol dqvl --write-ratio 0.05 --locality 0.9
    python -m repro run --iqs "majority:r=2,w=4" --oqs rowa
    python -m repro tune --validate-top 3 --json-out results/tune.json
    python -m repro availability --protocol dqvl --p 0.15 --epochs 200
    python -m repro chaos --seeds 10 --protocols dqvl,majority
    python -m repro chaos --weaken ignore_volume_expiry --shrink
    python -m repro explore --weaken ignore_volume_expiry --budget 2000 --save
    python -m repro explore --strategy dfs --budget 300 --por
    python -m repro explore --strategy dfs --sweep-edges 2:5 --budget 200
    python -m repro trace --partition 200:400 --export chrome --out trace.json
    python -m repro trace --export jsonl --span-filter op --top-slow 5
    python -m repro why --protocol dqvl --top 5 --check-conservation
    python -m repro why --gate --record

The ``run``/``chaos``/``explore``/``trace`` commands share one set of
scenario flags (one :func:`_scenario_parent` per command, so defaults
can differ); ``--num-edges``/``--edges`` and ``--num-clients``/
``--clients`` are interchangeable spellings.  Their handlers build the
runner configs through :class:`repro.scenario.ScenarioConfig`, the
shared scenario core.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import List, Optional

from .edge.deployments import PROTOCOL_DEPLOYERS
from .harness.availability import AvailabilitySimConfig, run_availability_sim
from .harness.experiment import ExperimentConfig, run_response_time
from .harness.figures import FIGURES, generate_figure
from .harness.report import format_series, format_table
from .scenario import ScenarioConfig

__all__ = ["main", "build_parser"]


def _scenario_parent(
    *,
    ops: int,
    clients: int,
    edges: int,
    ops_help: str = "operations per client",
    protocol: bool = True,
    seed: bool = True,
    write_ratio: Optional[float] = None,
    weaken: bool = False,
    specs: bool = False,
) -> argparse.ArgumentParser:
    """One parent parser for the shared scenario flags.

    ``run``, ``chaos``, ``explore`` and ``trace`` all accept the same
    spellings for the :class:`~repro.scenario.ScenarioConfig` core;
    only the *defaults* differ per command (e.g. ``run`` simulates 9
    edges where ``explore`` keeps the state space at 2), so each
    subcommand instantiates its own parent.  ``chaos`` spells protocol
    and seed as campaign-level flags (``--protocols``/``--seed-base``)
    and opts out of the single-run variants here.
    """
    parent = argparse.ArgumentParser(add_help=False)
    if protocol:
        parent.add_argument("--protocol", choices=sorted(PROTOCOL_DEPLOYERS),
                            default="dqvl")
    if seed:
        parent.add_argument("--seed", type=int, default=0)
    if write_ratio is not None:
        parent.add_argument("--write-ratio", type=float, default=write_ratio)
    parent.add_argument("--ops", type=int, default=ops, help=ops_help)
    parent.add_argument("--num-clients", "--clients", dest="clients",
                        type=int, default=clients)
    parent.add_argument("--num-edges", "--edges", dest="edges",
                        type=int, default=edges)
    parent.add_argument("--lease-length-ms", type=float, default=None,
                        help="volume lease length "
                             "(default: the runner's own default)")
    if weaken:
        parent.add_argument("--weaken", default="",
                            help="inject a named protocol bug "
                                 "(see `repro protocols` for names)")
    if specs:
        parent.add_argument("--iqs", metavar="SPEC", default=None,
                            help='declarative IQS quorum shape, e.g. '
                                 '"majority:r=2,w=4" or "grid:3x3" '
                                 '(dqvl-family protocols only)')
        parent.add_argument("--oqs", metavar="SPEC", default=None,
                            help='declarative OQS quorum shape, e.g. '
                                 '"rowa" or "majority:r=2,w=5"')
    return parent


def _scenario_from_args(args, **overrides) -> ScenarioConfig:
    """The shared scenario core from parsed ``_scenario_parent`` flags.

    *overrides* supplies fields a subcommand spells differently (chaos:
    the per-run protocol and seed of a campaign point).
    """
    kwargs = dict(
        num_edges=args.edges,
        num_clients=args.clients,
        ops_per_client=args.ops,
    )
    for name in ("protocol", "seed", "write_ratio", "weaken"):
        if hasattr(args, name):
            kwargs[name] = getattr(args, name)
    if args.lease_length_ms is not None:
        kwargs["lease_length_ms"] = args.lease_length_ms
    for flag, field_name in (("iqs", "iqs_spec"), ("oqs", "oqs_spec")):
        value = getattr(args, flag, None)
        if value is not None:
            kwargs[field_name] = value
    kwargs.update(overrides)
    return ScenarioConfig(**kwargs)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dual-quorum replication (Middleware 2005) — experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure's series")
    fig.add_argument("name", choices=sorted(FIGURES))
    fig.add_argument("--ops", type=int, default=150,
                     help="operations per client (simulated figures)")
    fig.add_argument("--seed", type=int, default=None)
    fig.add_argument("--json", action="store_true", help="emit JSON")
    fig.add_argument("--chart", action="store_true",
                     help="render an ASCII chart instead of a table")

    run = sub.add_parser(
        "run", help="one response-time experiment",
        parents=[_scenario_parent(write_ratio=0.05, ops=200,
                                  clients=3, edges=9, specs=True)],
    )
    run.add_argument("--locality", type=float, default=1.0)
    run.add_argument("--burst", type=float, default=None,
                     help="mean write-burst length (default: iid stream)")
    run.add_argument("--json", action="store_true")

    shard = sub.add_parser(
        "shard", help="one large scenario, sharded across worker processes",
        parents=[_scenario_parent(write_ratio=0.05, ops=200,
                                  clients=24, edges=9, specs=True)],
    )
    shard.add_argument("--locality", type=float, default=1.0)
    shard.add_argument("--groups", type=int, default=8,
                       help="fixed client groups (the unit of execution; "
                            "results depend on this, never on --workers)")
    shard.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: REPRO_SWEEP_WORKERS "
                            "or cpu count)")
    shard.add_argument("--no-cache", action="store_true",
                       help="bypass the sweep result cache")
    shard.add_argument("--json", action="store_true")

    cdn = sub.add_parser(
        "cdn",
        help="edge-CDN scenario: aggregate client populations over a "
             "multi-region PoP topology",
    )
    cdn.add_argument("--protocol", choices=sorted(PROTOCOL_DEPLOYERS),
                     default="dqvl")
    cdn.add_argument("--seed", type=int, default=0)
    cdn.add_argument("--users", type=int, default=1_000_000,
                     help="modeled users (cost scales with users x rate, "
                          "never with users alone)")
    cdn.add_argument("--rate", type=float, default=0.01,
                     help="per-user requests per second")
    cdn.add_argument("--regions", type=int, default=2)
    cdn.add_argument("--pops-per-region", type=int, default=2)
    cdn.add_argument("--write-ratio", type=float, default=0.05)
    cdn.add_argument("--objects", type=int, default=100_000,
                     help="key-universe size (lazy; nothing materialised)")
    cdn.add_argument("--volumes", type=int, default=1_000)
    cdn.add_argument("--zipf", type=float, default=0.9)
    cdn.add_argument("--horizon-ms", type=float, default=2_000.0)
    cdn.add_argument("--issuers-per-pop", type=int, default=8,
                     help="bounded issuer coroutines per PoP")
    cdn.add_argument("--queue-limit", type=int, default=256)
    cdn.add_argument("--max-inflight", type=int, default=None,
                     help="per-PoP front-end admission cap (throttling)")
    cdn.add_argument("--balance", choices=["round_robin", "least_loaded"],
                     default="least_loaded")
    cdn.add_argument("--arrivals", choices=["poisson", "mmpp"],
                     default="poisson")
    cdn.add_argument("--flash-at-ms", type=float, default=None,
                     help="flash-crowd start (default: none)")
    cdn.add_argument("--flash-peak", type=float, default=5.0)
    cdn.add_argument("--diurnal-amplitude", type=float, default=0.0)
    cdn.add_argument("--diurnal-period-ms", type=float, default=60_000.0)
    cdn.add_argument("--iqs", metavar="SPEC", default=None,
                     help='declarative IQS quorum shape, e.g. '
                          '"grid:3x3" (dqvl-family protocols only)')
    cdn.add_argument("--oqs", metavar="SPEC", default=None,
                     help='declarative OQS quorum shape, e.g. "rowa"')
    cdn.add_argument("--groups", type=int, default=1,
                     help="population shards on the sweep process pool "
                          "(1 = single simulation)")
    cdn.add_argument("--workers", type=int, default=None)
    cdn.add_argument("--no-cache", action="store_true")
    cdn.add_argument("--trace", action="store_true",
                     help="span tracing + per-phase latency budgets")
    cdn.add_argument("--budget-out", default=None,
                     help="write the phase-budget JSON artifact here "
                          "(implies --trace)")
    cdn.add_argument("--json-out", default=None,
                     help="write the canonical result JSON here "
                          "(same-seed runs are byte-identical)")
    cdn.add_argument("--json", action="store_true")

    tune = sub.add_parser(
        "tune",
        help="autotune (IQS, OQS) quorum shapes: analytic Pareto "
             "frontier over latency/load/availability, optionally "
             "validated through the simulator",
    )
    tune.add_argument("--num-edges", "--edges", dest="edges", type=int,
                      default=5, help="IQS and OQS node count")
    tune.add_argument("--read-fraction", type=float, default=0.9)
    tune.add_argument("--p", type=float, default=0.05,
                      help="per-node unavailability for the "
                           "availability axis")
    tune.add_argument("--jitter-ms", type=float, default=5.0,
                      help="per-message uniform jitter (> 0 makes "
                           "quorum size matter for latency)")
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--validate-top", type=int, default=0, metavar="K",
                      help="cross-check the top K frontier entries "
                           "(plus the default pair) on the simulator")
    tune.add_argument("--ops", type=int, default=150,
                      help="ops per client in latency validation runs")
    tune.add_argument("--epochs", type=int, default=150,
                      help="epochs in availability validation runs")
    tune.add_argument("--workers", type=int, default=None)
    tune.add_argument("--no-cache", action="store_true")
    tune.add_argument("--json-out", default=None,
                      help="write the byte-stable Pareto-frontier JSON "
                           "artifact here (same config + code -> "
                           "identical bytes)")
    tune.add_argument("--json", action="store_true")

    avail = sub.add_parser("availability", help="measured availability")
    avail.add_argument(
        "--protocol",
        choices=["dqvl", "majority", "rowa", "rowa_async",
                 "rowa_async_no_stale", "primary_backup"],
        default="dqvl",
    )
    avail.add_argument("--write-ratio", type=float, default=0.25)
    avail.add_argument("--replicas", type=int, default=5)
    avail.add_argument("--p", type=float, default=0.15)
    avail.add_argument("--epochs", type=int, default=200)
    avail.add_argument("--seed", type=int, default=0)
    avail.add_argument("--json", action="store_true")

    sweep = sub.add_parser(
        "sweep", help="cartesian sweep of write ratio x locality"
    )
    sweep.add_argument("--protocol", choices=sorted(PROTOCOL_DEPLOYERS), default="dqvl")
    sweep.add_argument("--write-ratios", type=float, nargs="+",
                       default=[0.0, 0.05, 0.25, 0.5])
    sweep.add_argument("--localities", type=float, nargs="+", default=[1.0])
    sweep.add_argument("--ops", type=int, default=120)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--metric", choices=["overall", "read", "write", "msgs"],
                       default="overall")
    sweep.add_argument("--json", action="store_true")

    report = sub.add_parser(
        "report", help="regenerate every figure into one markdown report"
    )
    report.add_argument("--out", default="results/REPORT.md")
    report.add_argument("--ops", type=int, default=150)
    report.add_argument("--no-charts", action="store_true")
    report.add_argument("--figures", nargs="*", default=None,
                        help="subset of figures (default: all)")
    report.add_argument("--measured-availability", action="store_true",
                        help="include the simulated availability cross-check")

    chaos = sub.add_parser(
        "chaos",
        help="randomized fault campaign with consistency + invariant checks",
        parents=[_scenario_parent(protocol=False, seed=False, weaken=True,
                                  ops=40, clients=3, edges=3, specs=True)],
    )
    chaos.add_argument("--protocols", default="dqvl",
                       help='comma-separated protocol list, or "all"')
    chaos.add_argument("--seeds", type=int, default=5,
                       help="number of seeds per protocol")
    chaos.add_argument("--seed-base", type=int, default=0,
                       help="first seed (campaign runs seed-base .. +seeds-1)")
    chaos.add_argument("--nemeses",
                       default="crash_storm,rolling_partition,loss_burst",
                       help='comma-separated nemesis list, or "all"')
    chaos.add_argument("--shrink", action="store_true",
                       help="minimize the first failing schedule and save a repro")
    chaos.add_argument("--corpus-dir", default="tests/chaos_corpus",
                       help="where --shrink writes the repro JSON")
    chaos.add_argument("--workers", type=int, default=None)
    chaos.add_argument("--no-cache", action="store_true")
    chaos.add_argument("--json", action="store_true")
    chaos.add_argument("--trace", action="store_true",
                       help="export a span timeline per run (see --trace-dir)")
    chaos.add_argument("--trace-dir", default="results/chaos_traces",
                       help="where --trace writes JSONL + Chrome-trace files")
    chaos.add_argument("--frontend", action="store_true",
                       help="drive clients through the edge front ends "
                            "(Figure 1's full path) instead of direct "
                            "service clients")
    chaos.add_argument("--resilience", action="store_true",
                       help="enable the adaptive resilience layer (failure "
                            "detectors, hedged QRPCs, degraded reads, shed "
                            "writes, post-crash catch-up); implies --frontend")

    explore = sub.add_parser(
        "explore",
        help="systematic schedule-space exploration (repro.mc model checker)",
        parents=[_scenario_parent(
            weaken=True, ops=6, clients=2, edges=2,
            ops_help="operations per client (keep small: the state "
                     "space is what gets explored)",
        )],
    )
    explore.add_argument("--strategy", choices=["dfs", "walk"], default="walk",
                         help="dfs: bounded depth-first over choice prefixes; "
                              "walk: seeded random walks (default)")
    explore.add_argument("--budget", type=int, default=500,
                         help="maximum schedules to execute")
    explore.add_argument("--p-deviate", type=float, default=0.15,
                         help="walk: per-decision deviation probability")
    explore.add_argument("--max-depth", type=int, default=40,
                         help="dfs: branch only on the first N decisions")
    explore.add_argument("--por", action=argparse.BooleanOptionalAction,
                         default=None,
                         help="partial-order reduction for the dfs strategy "
                              "(default: on when sweeping, off otherwise)")
    explore.add_argument("--sweep-edges", default=None, metavar="A:B",
                         help="explore once per cluster size A..B (smallest "
                              "first, stopping at the first witness)")
    explore.add_argument("--no-shrink", action="store_true",
                         help="skip ddmin minimization of the witness")
    explore.add_argument("--save", action="store_true",
                         help="write the shrunk repro to --corpus-dir")
    explore.add_argument("--corpus-dir", default="tests/mc_corpus",
                         help="where --save writes the repro JSON")
    explore.add_argument("--json", action="store_true")

    trace = sub.add_parser(
        "trace",
        help="one traced run; exports a causal op→round→message timeline",
        parents=[_scenario_parent(
            write_ratio=0.2, ops=60, clients=3, edges=9,
            ops_help="operations per client (small: traces are per-op)",
        )],
    )
    trace.add_argument("--locality", type=float, default=1.0)
    trace.add_argument("--export", choices=["chrome", "jsonl"], default="chrome",
                       help="chrome: Perfetto/chrome://tracing JSON; "
                            "jsonl: one record per line")
    trace.add_argument("--out", default=None,
                       help="output path (default: stdout)")
    trace.add_argument("--span-filter", default=None,
                       help="keep spans whose category or name matches "
                            "(subtrees of matches are retained)")
    trace.add_argument("--top-slow", type=int, default=0, metavar="N",
                       help="also print the N slowest operation spans")
    trace.add_argument("--top-slow-json", default=None, metavar="PATH",
                       help="write the top-slow ranking with per-phase "
                            "latency attribution as deterministic JSON")
    trace.add_argument("--attribution", action="store_true",
                       help="also print critical-path phase attribution "
                            "for the slowest ops")
    trace.add_argument(
        "--partition", default=None, metavar="START:DUR",
        help="partition the first edge's server from the quorum peers for "
             "DUR ms starting at START ms (shows, e.g., a DQVL read miss "
             "stalling on validation)",
    )

    why = sub.add_parser(
        "why",
        help="explain latency: per-op critical paths, phase budgets, "
             "and the perf-trajectory gate",
        parents=[_scenario_parent(
            write_ratio=0.2, ops=60, clients=3, edges=9,
            ops_help="operations per client (small: traces are per-op)",
        )],
    )
    why.add_argument("--locality", type=float, default=1.0)
    why.add_argument("--top", type=int, default=5, metavar="N",
                     help="explain the N slowest operations")
    why.add_argument("--json", default=None, metavar="PATH",
                     help="also write the top-slow attribution as "
                          "deterministic JSON")
    why.add_argument("--budget-out", default=None, metavar="PATH",
                     help="write the phase x percentile budget table as JSON")
    why.add_argument("--check-conservation", action="store_true",
                     help="fail unless every op's phase durations sum to "
                          "its end-to-end latency within 1e-6")
    why.add_argument(
        "--partition", default=None, metavar="START:DUR",
        help="inject a partition fault window (same semantics as "
             "`repro trace --partition`)",
    )
    why.add_argument("--gate", action="store_true",
                     help="re-measure the canonical workloads and fail on "
                          ">20%% regression in any attributed phase vs the "
                          "last recorded trajectory point")
    why.add_argument("--record", action="store_true",
                     help="append the canonical-workload measurement to the "
                          "trajectory history")
    why.add_argument("--history", default=None, metavar="PATH",
                     help="trajectory history file "
                          "(default: BENCH_latency.json)")

    sub.add_parser("protocols", help="list available protocols")
    return parser


def _cmd_figure(args) -> int:
    kwargs = {}
    if args.name in ("fig6a", "fig6b", "fig7a", "fig7b"):
        kwargs["ops"] = args.ops
        if args.seed is not None:
            kwargs["seed"] = args.seed
    x_label, x_values, series = generate_figure(args.name, **kwargs)
    title = f"{args.name} (see EXPERIMENTS.md for the paper's claims)"
    if args.json:
        print(json.dumps(
            {"figure": args.name, "x_label": x_label,
             "x": list(x_values), "series": series},
            indent=2,
        ))
    elif getattr(args, "chart", False):
        from .harness.charts import ascii_chart

        numeric_x = all(isinstance(x, (int, float)) for x in x_values)
        xs = list(x_values) if numeric_x else list(range(len(x_values)))
        log_y = args.name in ("fig8a", "fig8b")
        y_label = "unavail" if log_y else ("msgs" if args.name.startswith("fig9") else "ms")
        print(ascii_chart(
            xs, series, log_y=log_y, x_label=x_label, y_label=y_label, title=title,
        ))
        if not numeric_x:
            mapping = ", ".join(f"{i}={x}" for i, x in enumerate(x_values))
            print(f"   x axis: {mapping}")
    else:
        print(format_series(
            x_label, x_values, sorted(series.items()), title=title,
        ))
    return 0


def _cmd_run(args) -> int:
    try:
        config = _scenario_from_args(args).to_experiment(
            locality=args.locality,
            mean_write_burst=args.burst,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        result = run_response_time(config)
    except ValueError as exc:
        # deep config errors surface at deploy time, e.g. a quorum
        # spec whose shape cannot be built over --num-edges nodes
        print(str(exc), file=sys.stderr)
        return 2
    s = result.summary
    payload = {
        "protocol": args.protocol,
        "write_ratio": args.write_ratio,
        "locality": args.locality,
        "overall_ms": s.overall.mean,
        "read_ms": s.reads.mean,
        "write_ms": s.writes.mean,
        "p50_ms": s.overall.p50,
        "p95_ms": s.overall.p95,
        "p99_ms": s.overall.p99,
        "read_hit_rate": s.read_hit_rate,
        "messages_per_request": result.messages_per_request,
        "requests": result.total_requests,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(format_table(
            ["metric", "value"],
            [[k, v if v is not None else "-"] for k, v in payload.items()],
            title=f"{args.protocol}: response-time experiment",
        ))
    return 0


def _cmd_shard(args) -> int:
    from .harness.shards import run_sharded

    try:
        config = _scenario_from_args(args).to_experiment(locality=args.locality)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        result = run_sharded(
            config,
            num_groups=args.groups,
            workers=args.workers,
            cache=not args.no_cache,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    s = result.summary
    payload = {
        "protocol": args.protocol,
        "write_ratio": args.write_ratio,
        "locality": args.locality,
        "groups": result.num_groups,
        "overall_ms": s.overall.mean,
        "read_ms": s.reads.mean,
        "write_ms": s.writes.mean,
        "p50_ms": s.overall.p50,
        "p95_ms": s.overall.p95,
        "p99_ms": s.overall.p99,
        "read_hit_rate": s.read_hit_rate,
        "availability": s.availability,
        "messages_per_request": result.messages_per_request,
        "requests": result.total_requests,
        "sim_time_ms": result.sim_time_ms,
    }
    if args.json:
        payload["metrics"] = result.metrics
        print(json.dumps(payload, indent=2))
    else:
        print(format_table(
            ["metric", "value"],
            [[k, v if v is not None else "-"] for k, v in payload.items()],
            title=f"{args.protocol}: sharded scenario "
                  f"({result.num_groups} groups)",
        ))
    return 0


def _cmd_cdn(args) -> int:
    from .edge.cdn import CdnScenarioConfig, run_cdn

    deploy_kwargs = {}
    if args.iqs is not None:
        deploy_kwargs["iqs_spec"] = args.iqs
    if args.oqs is not None:
        deploy_kwargs["oqs_spec"] = args.oqs
    if deploy_kwargs and args.protocol not in ("dqvl", "basic_dq"):
        print(f"--iqs/--oqs only apply to dqvl-family protocols, "
              f"not {args.protocol!r}", file=sys.stderr)
        return 2
    try:
        config = CdnScenarioConfig(
            deploy_kwargs=deploy_kwargs,
            protocol=args.protocol,
            seed=args.seed,
            users=args.users,
            ops_per_user_per_s=args.rate,
            regions=args.regions,
            pops_per_region=args.pops_per_region,
            write_ratio=args.write_ratio,
            num_objects=args.objects,
            num_volumes=args.volumes,
            zipf_s=args.zipf,
            horizon_ms=args.horizon_ms,
            issuers_per_pop=args.issuers_per_pop,
            queue_limit=args.queue_limit,
            fe_max_inflight=args.max_inflight,
            balance=args.balance,
            arrivals=args.arrivals,
            flash_start_ms=args.flash_at_ms,
            flash_peak_multiplier=args.flash_peak,
            diurnal_amplitude=args.diurnal_amplitude,
            diurnal_period_ms=args.diurnal_period_ms,
            trace=args.trace or args.budget_out is not None,
        )
    except (ValueError, KeyError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.groups > 1:
        from .harness.shards import run_sharded_cdn

        result = run_sharded_cdn(
            config,
            num_groups=args.groups,
            workers=args.workers,
            cache=not args.no_cache,
        )
        stats = dict(result.stats)
        budget_obj = [b for b in result.budgets if b is not None] or None
        groups = result.num_groups
    else:
        single = run_cdn(config)
        result = single
        stats = single.stats.to_json_obj()
        budget_obj = single.budget
        groups = 1
    s = result.summary
    arrivals = stats.get("arrivals", 0)
    payload = {
        "protocol": args.protocol,
        "users": args.users,
        "rate_per_user_per_s": args.rate,
        "pops": config.num_pops,
        "groups": groups,
        "arrivals": arrivals,
        "completed": stats.get("completed", 0),
        "failed": stats.get("failed", 0),
        "dropped": stats.get("dropped", 0),
        "queue_peak": stats.get("queue_peak", 0),
        "read_ms": s.reads.mean,
        "write_ms": s.writes.mean,
        "p50_ms": s.overall.p50,
        "p95_ms": s.overall.p95,
        "p99_ms": s.overall.p99,
        "availability": s.availability,
        "events_processed": result.events_processed,
        "events_per_arrival": (
            result.events_processed / arrivals if arrivals else 0.0
        ),
        "sim_time_ms": result.sim_time_ms,
    }
    for key in ("reads_throttled", "writes_throttled", "writes_shed"):
        if result.fe_counters.get(key):
            payload[key] = result.fe_counters[key]
    if args.json_out:
        os.makedirs(os.path.dirname(args.json_out) or ".", exist_ok=True)
        with open(args.json_out, "w") as fh:
            fh.write(result.to_json())
        print(f"canonical result written to {args.json_out}", file=sys.stderr)
    if args.budget_out:
        os.makedirs(os.path.dirname(args.budget_out) or ".", exist_ok=True)
        with open(args.budget_out, "w") as fh:
            json.dump(budget_obj, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"phase budget written to {args.budget_out}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(format_table(
            ["metric", "value"],
            [[k, v if v is not None else "-"] for k, v in payload.items()],
            title=f"{args.protocol}: cdn scenario "
                  f"({args.users:,} modeled users, {config.num_pops} PoPs)",
        ))
    return 0


def _cmd_tune(args) -> int:
    from .tune import TuneConfig, run_tune

    try:
        config = TuneConfig(
            num_edges=args.edges,
            read_fraction=args.read_fraction,
            p=args.p,
            jitter_ms=args.jitter_ms,
            seed=args.seed,
            validate_top=args.validate_top,
            ops_per_client=args.ops,
            epochs=args.epochs,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    report = run_tune(config, workers=args.workers, cache=not args.no_cache)

    if args.json_out:
        os.makedirs(os.path.dirname(args.json_out) or ".", exist_ok=True)
        with open(args.json_out, "w") as fh:
            fh.write(report.frontier_json())
        print(f"frontier artifact written to {args.json_out}",
              file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_json_obj(), indent=2))
        return 0

    def row(score, label=""):
        return [
            label or f"{score.iqs} | {score.oqs}",
            f"{score.latency_ms:.2f}",
            f"{score.load:.3f}",
            f"{score.availability:.6f}",
        ]

    header = ["iqs | oqs", "latency_ms", "load", "availability"]
    print(format_table(
        header,
        [row(s) for s in report.frontier],
        title=f"Pareto frontier ({report.num_candidates} candidates, "
              f"n={config.num_edges}, f={config.read_fraction}, "
              f"p={config.p})",
    ))
    print(format_table(
        header, [row(report.default, "default: majority | rowa")],
        title="paper default",
    ))
    if report.dominating:
        print(format_table(
            header + ["axes better"],
            [row(s) + [", ".join(axes)] for s, axes in report.dominating],
            title="candidates beating the default on >= 2 of 3 axes",
        ))
    else:
        print("no candidate beats the default on >= 2 of 3 axes")
    if report.validation:
        print(format_table(
            ["iqs | oqs", "lat model", "lat sim", "rel err",
             "av model", "av sim", "abs err", "ok"],
            [
                [
                    f"{v.iqs} | {v.oqs}",
                    f"{v.analytic_latency_ms:.2f}",
                    f"{v.simulated_latency_ms:.2f}",
                    f"{v.latency_rel_error:.3f}",
                    f"{v.analytic_availability:.5f}",
                    f"{v.simulated_availability:.5f}",
                    f"{v.availability_abs_error:+.5f}",
                    "yes" if v.ok else "NO",
                ]
                for v in report.validation
            ],
            title="analytic vs simulated cross-check",
        ))
        if not all(v.ok for v in report.validation):
            return 1
    return 0


def _cmd_availability(args) -> int:
    config = AvailabilitySimConfig(
        protocol=args.protocol,
        write_ratio=args.write_ratio,
        num_replicas=args.replicas,
        p=args.p,
        epochs=args.epochs,
        seed=args.seed,
        max_attempts=4,
    )
    result = run_availability_sim(config)
    from .analysis.availability import protocol_unavailability

    analytic = protocol_unavailability(
        args.protocol, args.write_ratio, args.replicas, args.p
    )
    payload = {
        "protocol": args.protocol,
        "measured_unavailability": result.unavailability,
        "analytic_unavailability": analytic,
        "requests": result.total_requests,
        "rejected": result.rejected,
        "stale_rejected": result.stale_rejected,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(format_table(
            ["metric", "value"],
            [[k, v] for k, v in payload.items()],
            title=f"{args.protocol}: measured availability",
        ))
    return 0


def _cmd_sweep(args) -> int:
    from .harness.sweeps import run_sweep

    def metric_of(point):
        if args.metric == "overall":
            return point.summary.overall.mean
        if args.metric == "read":
            return point.summary.reads.mean
        if args.metric == "write":
            return point.summary.writes.mean
        return point.messages_per_request

    configs = [
        ExperimentConfig(
            protocol=args.protocol,
            write_ratio=w,
            locality=locality,
            ops_per_client=args.ops,
            seed=args.seed,
        )
        for locality in args.localities
        for w in args.write_ratios
    ]
    points = iter(run_sweep(configs))
    grid = {
        locality: [round(metric_of(next(points)), 2) for _ in args.write_ratios]
        for locality in args.localities
    }
    if args.json:
        print(json.dumps(
            {"protocol": args.protocol, "metric": args.metric,
             "write_ratios": args.write_ratios,
             "localities": args.localities,
             "grid": {str(k): v for k, v in grid.items()}},
            indent=2,
        ))
    else:
        rows = [[loc] + values for loc, values in grid.items()]
        print(format_table(
            ["locality \\ w"] + [str(w) for w in args.write_ratios],
            rows,
            title=f"{args.protocol}: {args.metric} over write ratio x locality",
        ))
    return 0


def _cmd_report(args) -> int:
    from .harness.report import generate_report

    path = generate_report(
        out_path=args.out,
        ops=args.ops,
        charts=not args.no_charts,
        figures=args.figures,
        measured_availability=args.measured_availability,
    )
    print(f"report written to {path}")
    return 0


def _cmd_chaos(args) -> int:
    from .chaos import NEMESES
    from .chaos.campaign import run_campaign

    protocols = (
        sorted(PROTOCOL_DEPLOYERS)
        if args.protocols == "all"
        else [p for p in args.protocols.split(",") if p]
    )
    nemeses = tuple(
        sorted(NEMESES)
        if args.nemeses == "all"
        else [n for n in args.nemeses.split(",") if n]
    )
    scenario = _scenario_from_args(args)
    mode = "frontend" if (args.frontend or args.resilience) else "direct"
    try:
        configs = [
            dataclasses.replace(
                scenario, protocol=protocol, seed=args.seed_base + s
            ).to_chaos(nemeses=nemeses, trace=args.trace,
                       mode=mode, resilience=args.resilience)
            for protocol in protocols
            for s in range(args.seeds)
        ]
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    points = run_campaign(
        configs, workers=args.workers, cache=not args.no_cache
    )
    if args.trace:
        import os

        os.makedirs(args.trace_dir, exist_ok=True)
        for p in points:
            stem = f"{p.config.protocol}_seed{p.config.seed}"
            if p.config.weaken:
                stem += f"_{p.config.weaken}"
            for suffix, text in (
                (".jsonl", p.trace_jsonl), (".chrome.json", p.trace_chrome)
            ):
                if text is None:
                    continue
                with open(os.path.join(args.trace_dir, stem + suffix), "w") as fh:
                    fh.write(text)
        print(f"trace exports written to {args.trace_dir}/", file=sys.stderr)

    failing = [p for p in points if not p.ok]
    if args.json:
        print(json.dumps(
            [
                {
                    "protocol": p.config.protocol,
                    "seed": p.config.seed,
                    "weaken": p.config.weaken,
                    "violations": p.violations,
                    "stats": p.stats,
                    "schedule": p.schedule,
                }
                for p in points
            ],
            indent=2, default=repr,
        ))
    else:
        rows = []
        for p in points:
            types = ",".join(sorted({v["type"] for v in p.violations})) or "-"
            avail = p.stats.get("availability", {})
            rows.append([
                p.config.protocol, p.config.seed,
                p.stats["ops_recorded"], p.stats["ops_failed"],
                avail.get("reads_degraded", 0),
                len(p.violations), types,
            ])
        title = f"chaos campaign: nemeses {', '.join(nemeses)}"
        if args.weaken:
            title += f" (weakened: {args.weaken})"
        if args.resilience:
            title += " [resilience]"
        print(format_table(
            ["protocol", "seed", "ops", "rejected", "degraded",
             "violations", "types"],
            rows, title=title,
        ))
        print(f"{len(points) - len(failing)}/{len(points)} runs clean")

    if args.shrink and failing:
        from .chaos import save_repro, shrink_schedule
        from .chaos.faults import FaultSchedule

        first = failing[0]
        print(
            f"shrinking {first.config.protocol} seed {first.config.seed} "
            f"({len(first.schedule)} fault windows)..."
        )
        result = shrink_schedule(
            first.config, FaultSchedule.from_json_obj(first.schedule)
        )
        path = save_repro(result, args.corpus_dir)
        print(
            f"minimized to {len(result.shrunk)} fault window(s) in "
            f"{result.runs} runs; repro saved to {path}"
        )
    return 1 if failing else 0


def _cmd_explore(args) -> int:
    from .mc import explore, explore_sweep_edges, save_mc_repro

    config = _scenario_from_args(args).to_mc()
    sweep = None
    if args.sweep_edges is not None:
        try:
            lo, hi = (int(x) for x in args.sweep_edges.split(":", 1))
            if not 1 <= lo <= hi:
                raise ValueError(args.sweep_edges)
        except ValueError:
            print("--sweep-edges wants A:B with 1 <= A <= B, e.g. 2:5",
                  file=sys.stderr)
            return 2
        sweep = range(lo, hi + 1)
    por = args.por if args.por is not None else sweep is not None
    explore_kwargs = dict(
        strategy=args.strategy,
        budget=args.budget,
        p_deviate=args.p_deviate,
        max_depth=args.max_depth,
        shrink=not args.no_shrink,
    )
    if sweep is not None:
        results = explore_sweep_edges(config, sweep, por=por, **explore_kwargs)
    else:
        results = [explore(config, por=por, **explore_kwargs)]
    # The interesting result is the last one: the only one a sweep lets
    # carry a witness, or the single exploration otherwise.
    result = results[-1]
    saved_path = None
    if args.save and result.witness is not None:
        saved_path = save_mc_repro(result, args.corpus_dir)

    if args.json:
        payload = {
            "protocol": args.protocol,
            "seed": args.seed,
            "weaken": args.weaken,
            "strategy": result.strategy,
            "runs": result.runs,
            "pruned": result.pruned,
            "por": por,
            "shrink_runs": result.shrink_runs,
            "ok": result.ok,
        }
        if sweep is not None:
            payload["sweep"] = [
                {"num_edges": r.config.num_edges, "runs": r.runs,
                 "pruned": r.pruned, "ok": r.ok}
                for r in results
            ]
        if result.shrunk is not None:
            payload.update({
                "violation_types": result.shrunk.expected_types,
                "deviations": result.shrunk.stats["deviations"],
                "choices": result.shrunk.choices,
                "violations": result.shrunk.violations,
            })
        if saved_path:
            payload["repro"] = saved_path
        print(json.dumps(payload, indent=2))
    elif result.ok:
        label = args.protocol + (
            f" (weakened: {args.weaken})" if args.weaken else ""
        )
        if sweep is not None:
            sizes = ", ".join(
                f"{r.config.num_edges} edges: {r.runs} runs"
                + (f" ({r.pruned} pruned)" if r.pruned else "")
                for r in results
            )
            print(f"{label}: no violation across the sweep — {sizes}")
        else:
            print(
                f"{label}: no violation in {result.runs} "
                f"{result.strategy} schedules"
                + (f" ({result.pruned} branches pruned)"
                   if result.pruned else "")
            )
    else:
        shrunk = result.shrunk
        print(
            f"{args.protocol}"
            + (f" (weakened: {args.weaken})" if args.weaken else "")
            + (f" at {result.config.num_edges} edges"
               if sweep is not None else "")
            + f": VIOLATION after {result.runs} {result.strategy} schedule(s)"
        )
        print(
            f"  shrunk to {shrunk.stats['deviations']} scheduling deviation(s) "
            f"in {result.shrink_runs} runs; types: {shrunk.expected_types}"
        )
        for v in shrunk.violations[:3]:
            print(f"  - {v.get('type')}: {v.get('detail', '')}")
        if saved_path:
            print(f"  repro saved to {saved_path}")
    return 0 if result.ok else 1


def _partition_schedule(args):
    """The shared ``--partition START:DUR`` fault schedule, or None.

    Raises ValueError on a malformed spec.  Cuts the first edge's
    server off from its quorum peers: for DQVL that severs oqs0 from
    every IQS node, so a read miss at oqs0 must retransmit its
    validation rounds until the window heals.
    """
    if args.partition is None:
        return None
    from .chaos.faults import Fault, FaultSchedule

    start_str, dur_str = args.partition.split(":", 1)
    start, duration = float(start_str), float(dur_str)
    if args.protocol in ("dqvl", "basic_dq"):
        groups = (("oqs0",), tuple(f"iqs{k}" for k in range(args.edges)))
    else:
        groups = (("srv0",), tuple(f"srv{k}" for k in range(1, args.edges)))
    return FaultSchedule([
        Fault.make("partition", start=start, duration=duration,
                   groups=groups)
    ])


def _cmd_trace(args) -> int:
    from .obs import (
        format_attributions,
        format_top_slow,
        spans_to_chrome,
        spans_to_jsonl,
        top_slow_json,
    )

    try:
        schedule = _partition_schedule(args)
    except ValueError:
        print("--partition wants START:DUR in ms, e.g. 200:400",
              file=sys.stderr)
        return 2

    try:
        config = _scenario_from_args(args).to_experiment(
            locality=args.locality,
            trace=True,
            fault_schedule=schedule,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    result = run_response_time(config)
    obs = result.obs
    assert obs is not None
    if args.export == "chrome":
        text = spans_to_chrome(obs.tracer, faults=schedule,
                               span_filter=args.span_filter)
    else:
        text = spans_to_jsonl(obs.tracer, faults=schedule,
                              span_filter=args.span_filter,
                              metrics=obs.metrics)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(
            f"{args.export} trace ({len(obs.tracer.spans)} spans, "
            f"{len(obs.tracer.events)} events) written to {args.out}",
            file=sys.stderr,
        )
        if args.export == "chrome":
            print("open it at https://ui.perfetto.dev or chrome://tracing",
                  file=sys.stderr)
    else:
        print(text)
    if args.top_slow > 0:
        print(format_top_slow(obs.tracer, n=args.top_slow), file=sys.stderr)
    if args.top_slow_json:
        doc = top_slow_json(obs.tracer, n=args.top_slow or 5)
        with open(args.top_slow_json, "w") as fh:
            fh.write(doc)
        print(f"top-slow attribution written to {args.top_slow_json}",
              file=sys.stderr)
    if args.attribution:
        print(format_attributions(obs.tracer, n=args.top_slow or 5),
              file=sys.stderr)
    return 0


def _cmd_why(args) -> int:
    from .obs import (
        attribute_op,
        build_index,
        format_attribution,
        format_budget,
        latency_budget,
        top_slow_json,
    )
    from .obs import trajectory as traj

    history_path = args.history or traj.DEFAULT_HISTORY_PATH
    if args.gate or args.record:
        point = traj.measure_workloads()
        status = 0
        if args.gate:
            regressions = traj.compare_to_last(
                point, traj.load_history(history_path)
            )
            print(traj.format_regressions(regressions), end="")
            status = 1 if regressions else 0
        if args.record:
            path = traj.record_point(point, history_path)
            print(f"trajectory point recorded to {path}")
        return status

    try:
        schedule = _partition_schedule(args)
    except ValueError:
        print("--partition wants START:DUR in ms, e.g. 200:400",
              file=sys.stderr)
        return 2
    try:
        config = _scenario_from_args(args).to_experiment(
            locality=args.locality,
            trace=True,
            fault_schedule=schedule,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    result = run_response_time(config)
    obs = result.obs
    assert obs is not None
    tracer = obs.tracer

    index = build_index(tracer)
    attributions = [attribute_op(index, op) for op in index.root_ops()]
    if args.check_conservation:
        worst = max(
            (a.conservation_error for a in attributions), default=0.0
        )
        if worst > 1e-6:
            print(f"conservation check FAILED: max error {worst} ms",
                  file=sys.stderr)
            return 1
        print(
            f"conservation check passed: {len(attributions)} ops, "
            f"max |sum(phases) - latency| = {worst:g} ms"
        )

    slow = tracer.top_slow(args.top)
    if slow:
        print(f"top {len(slow)} slowest operations ({args.protocol}, "
              f"seed {args.seed}):")
        for op in slow:
            print(format_attribution(attribute_op(index, op)))
    else:
        print("no finished operation spans recorded")

    budget = latency_budget(attributions)
    print()
    print(format_budget(
        budget, title=f"latency budget ({args.protocol}, seed {args.seed})"
    ), end="")

    if args.json:
        with open(args.json, "w") as fh:
            fh.write(top_slow_json(tracer, n=args.top))
        print(f"top-slow attribution written to {args.json}",
              file=sys.stderr)
    if args.budget_out:
        with open(args.budget_out, "w") as fh:
            fh.write(budget.to_json())
        print(f"budget table written to {args.budget_out}",
              file=sys.stderr)
    return 0


def _cmd_protocols(_args) -> int:
    from .chaos import NEMESES
    from .chaos.weaken import WEAKENERS

    print("response-time protocols:", ", ".join(sorted(PROTOCOL_DEPLOYERS)))
    print("figures:", ", ".join(sorted(FIGURES)))
    print("weakeners:", ", ".join(sorted(WEAKENERS)))
    print("nemeses:", ", ".join(sorted(NEMESES)))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "figure": _cmd_figure,
        "run": _cmd_run,
        "shard": _cmd_shard,
        "cdn": _cmd_cdn,
        "tune": _cmd_tune,
        "availability": _cmd_availability,
        "sweep": _cmd_sweep,
        "report": _cmd_report,
        "chaos": _cmd_chaos,
        "explore": _cmd_explore,
        "trace": _cmd_trace,
        "why": _cmd_why,
        "protocols": _cmd_protocols,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
