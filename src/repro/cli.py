"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure``       regenerate any paper figure's series
                 (fig6a fig6b fig7a fig7b fig8a fig8b fig9a fig9b)
``run``          one response-time experiment with explicit parameters
``availability`` measured availability under Bernoulli outages
``chaos``        randomized chaos campaign with invariant checking
``protocols``    list the available protocols

Examples::

    python -m repro figure fig7b
    python -m repro figure fig8a --json
    python -m repro run --protocol dqvl --write-ratio 0.05 --locality 0.9
    python -m repro availability --protocol dqvl --p 0.15 --epochs 200
    python -m repro chaos --seeds 10 --protocols dqvl,majority
    python -m repro chaos --weaken ignore_volume_expiry --shrink
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .edge.deployments import PROTOCOL_DEPLOYERS
from .harness.availability import AvailabilitySimConfig, run_availability_sim
from .harness.experiment import ExperimentConfig, run_response_time
from .harness.figures import FIGURES, generate_figure
from .harness.report import format_series, format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dual-quorum replication (Middleware 2005) — experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure's series")
    fig.add_argument("name", choices=sorted(FIGURES))
    fig.add_argument("--ops", type=int, default=150,
                     help="operations per client (simulated figures)")
    fig.add_argument("--seed", type=int, default=None)
    fig.add_argument("--json", action="store_true", help="emit JSON")
    fig.add_argument("--chart", action="store_true",
                     help="render an ASCII chart instead of a table")

    run = sub.add_parser("run", help="one response-time experiment")
    run.add_argument("--protocol", choices=sorted(PROTOCOL_DEPLOYERS), default="dqvl")
    run.add_argument("--write-ratio", type=float, default=0.05)
    run.add_argument("--locality", type=float, default=1.0)
    run.add_argument("--ops", type=int, default=200)
    run.add_argument("--clients", type=int, default=3)
    run.add_argument("--edges", type=int, default=9)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--burst", type=float, default=None,
                     help="mean write-burst length (default: iid stream)")
    run.add_argument("--json", action="store_true")

    avail = sub.add_parser("availability", help="measured availability")
    avail.add_argument(
        "--protocol",
        choices=["dqvl", "majority", "rowa", "rowa_async",
                 "rowa_async_no_stale", "primary_backup"],
        default="dqvl",
    )
    avail.add_argument("--write-ratio", type=float, default=0.25)
    avail.add_argument("--replicas", type=int, default=5)
    avail.add_argument("--p", type=float, default=0.15)
    avail.add_argument("--epochs", type=int, default=200)
    avail.add_argument("--seed", type=int, default=0)
    avail.add_argument("--json", action="store_true")

    sweep = sub.add_parser(
        "sweep", help="cartesian sweep of write ratio x locality"
    )
    sweep.add_argument("--protocol", choices=sorted(PROTOCOL_DEPLOYERS), default="dqvl")
    sweep.add_argument("--write-ratios", type=float, nargs="+",
                       default=[0.0, 0.05, 0.25, 0.5])
    sweep.add_argument("--localities", type=float, nargs="+", default=[1.0])
    sweep.add_argument("--ops", type=int, default=120)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--metric", choices=["overall", "read", "write", "msgs"],
                       default="overall")
    sweep.add_argument("--json", action="store_true")

    report = sub.add_parser(
        "report", help="regenerate every figure into one markdown report"
    )
    report.add_argument("--out", default="results/REPORT.md")
    report.add_argument("--ops", type=int, default=150)
    report.add_argument("--no-charts", action="store_true")
    report.add_argument("--figures", nargs="*", default=None,
                        help="subset of figures (default: all)")
    report.add_argument("--measured-availability", action="store_true",
                        help="include the simulated availability cross-check")

    chaos = sub.add_parser(
        "chaos",
        help="randomized fault campaign with consistency + invariant checks",
    )
    chaos.add_argument("--protocols", default="dqvl",
                       help='comma-separated protocol list, or "all"')
    chaos.add_argument("--seeds", type=int, default=5,
                       help="number of seeds per protocol")
    chaos.add_argument("--seed-base", type=int, default=0,
                       help="first seed (campaign runs seed-base .. +seeds-1)")
    chaos.add_argument("--nemeses",
                       default="crash_storm,rolling_partition,loss_burst",
                       help='comma-separated nemesis list, or "all"')
    chaos.add_argument("--ops", type=int, default=40,
                       help="operations per client")
    chaos.add_argument("--clients", type=int, default=3)
    chaos.add_argument("--edges", type=int, default=3)
    chaos.add_argument("--weaken", default="",
                       help="inject a named protocol bug (harness self-test)")
    chaos.add_argument("--shrink", action="store_true",
                       help="minimize the first failing schedule and save a repro")
    chaos.add_argument("--corpus-dir", default="tests/chaos_corpus",
                       help="where --shrink writes the repro JSON")
    chaos.add_argument("--workers", type=int, default=None)
    chaos.add_argument("--no-cache", action="store_true")
    chaos.add_argument("--json", action="store_true")

    sub.add_parser("protocols", help="list available protocols")
    return parser


def _cmd_figure(args) -> int:
    kwargs = {}
    if args.name in ("fig6a", "fig6b", "fig7a", "fig7b"):
        kwargs["ops"] = args.ops
        if args.seed is not None:
            kwargs["seed"] = args.seed
    x_label, x_values, series = generate_figure(args.name, **kwargs)
    title = f"{args.name} (see EXPERIMENTS.md for the paper's claims)"
    if args.json:
        print(json.dumps(
            {"figure": args.name, "x_label": x_label,
             "x": list(x_values), "series": series},
            indent=2,
        ))
    elif getattr(args, "chart", False):
        from .harness.charts import ascii_chart

        numeric_x = all(isinstance(x, (int, float)) for x in x_values)
        xs = list(x_values) if numeric_x else list(range(len(x_values)))
        log_y = args.name in ("fig8a", "fig8b")
        y_label = "unavail" if log_y else ("msgs" if args.name.startswith("fig9") else "ms")
        print(ascii_chart(
            xs, series, log_y=log_y, x_label=x_label, y_label=y_label, title=title,
        ))
        if not numeric_x:
            mapping = ", ".join(f"{i}={x}" for i, x in enumerate(x_values))
            print(f"   x axis: {mapping}")
    else:
        print(format_series(
            x_label, x_values, sorted(series.items()), title=title,
        ))
    return 0


def _cmd_run(args) -> int:
    config = ExperimentConfig(
        protocol=args.protocol,
        write_ratio=args.write_ratio,
        locality=args.locality,
        ops_per_client=args.ops,
        num_clients=args.clients,
        num_edges=args.edges,
        seed=args.seed,
        mean_write_burst=args.burst,
    )
    result = run_response_time(config)
    s = result.summary
    payload = {
        "protocol": args.protocol,
        "write_ratio": args.write_ratio,
        "locality": args.locality,
        "overall_ms": s.overall.mean,
        "read_ms": s.reads.mean,
        "write_ms": s.writes.mean,
        "p95_ms": s.overall.p95,
        "read_hit_rate": s.read_hit_rate,
        "messages_per_request": result.messages_per_request,
        "requests": result.total_requests,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(format_table(
            ["metric", "value"],
            [[k, v if v is not None else "-"] for k, v in payload.items()],
            title=f"{args.protocol}: response-time experiment",
        ))
    return 0


def _cmd_availability(args) -> int:
    config = AvailabilitySimConfig(
        protocol=args.protocol,
        write_ratio=args.write_ratio,
        num_replicas=args.replicas,
        p=args.p,
        epochs=args.epochs,
        seed=args.seed,
        max_attempts=4,
    )
    result = run_availability_sim(config)
    from .analysis.availability import protocol_unavailability

    analytic = protocol_unavailability(
        args.protocol, args.write_ratio, args.replicas, args.p
    )
    payload = {
        "protocol": args.protocol,
        "measured_unavailability": result.unavailability,
        "analytic_unavailability": analytic,
        "requests": result.total_requests,
        "rejected": result.rejected,
        "stale_rejected": result.stale_rejected,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(format_table(
            ["metric", "value"],
            [[k, v] for k, v in payload.items()],
            title=f"{args.protocol}: measured availability",
        ))
    return 0


def _cmd_sweep(args) -> int:
    from .harness.sweeps import run_sweep

    def metric_of(point):
        if args.metric == "overall":
            return point.summary.overall.mean
        if args.metric == "read":
            return point.summary.reads.mean
        if args.metric == "write":
            return point.summary.writes.mean
        return point.messages_per_request

    configs = [
        ExperimentConfig(
            protocol=args.protocol,
            write_ratio=w,
            locality=locality,
            ops_per_client=args.ops,
            seed=args.seed,
        )
        for locality in args.localities
        for w in args.write_ratios
    ]
    points = iter(run_sweep(configs))
    grid = {
        locality: [round(metric_of(next(points)), 2) for _ in args.write_ratios]
        for locality in args.localities
    }
    if args.json:
        print(json.dumps(
            {"protocol": args.protocol, "metric": args.metric,
             "write_ratios": args.write_ratios,
             "localities": args.localities,
             "grid": {str(k): v for k, v in grid.items()}},
            indent=2,
        ))
    else:
        rows = [[loc] + values for loc, values in grid.items()]
        print(format_table(
            ["locality \\ w"] + [str(w) for w in args.write_ratios],
            rows,
            title=f"{args.protocol}: {args.metric} over write ratio x locality",
        ))
    return 0


def _cmd_report(args) -> int:
    from .harness.report import generate_report

    path = generate_report(
        out_path=args.out,
        ops=args.ops,
        charts=not args.no_charts,
        figures=args.figures,
        measured_availability=args.measured_availability,
    )
    print(f"report written to {path}")
    return 0


def _cmd_chaos(args) -> int:
    from .chaos import NEMESES, ChaosRunConfig
    from .chaos.campaign import run_campaign

    protocols = (
        sorted(PROTOCOL_DEPLOYERS)
        if args.protocols == "all"
        else [p for p in args.protocols.split(",") if p]
    )
    nemeses = tuple(
        sorted(NEMESES)
        if args.nemeses == "all"
        else [n for n in args.nemeses.split(",") if n]
    )
    configs = [
        ChaosRunConfig(
            protocol=protocol,
            seed=args.seed_base + s,
            nemeses=nemeses,
            ops_per_client=args.ops,
            num_clients=args.clients,
            num_edges=args.edges,
            weaken=args.weaken,
        )
        for protocol in protocols
        for s in range(args.seeds)
    ]
    points = run_campaign(
        configs, workers=args.workers, cache=not args.no_cache
    )

    failing = [p for p in points if not p.ok]
    if args.json:
        print(json.dumps(
            [
                {
                    "protocol": p.config.protocol,
                    "seed": p.config.seed,
                    "weaken": p.config.weaken,
                    "violations": p.violations,
                    "stats": p.stats,
                    "schedule": p.schedule,
                }
                for p in points
            ],
            indent=2, default=repr,
        ))
    else:
        rows = []
        for p in points:
            types = ",".join(sorted({v["type"] for v in p.violations})) or "-"
            rows.append([
                p.config.protocol, p.config.seed,
                p.stats["ops_recorded"], p.stats["ops_failed"],
                len(p.violations), types,
            ])
        title = f"chaos campaign: nemeses {', '.join(nemeses)}"
        if args.weaken:
            title += f" (weakened: {args.weaken})"
        print(format_table(
            ["protocol", "seed", "ops", "rejected", "violations", "types"],
            rows, title=title,
        ))
        print(f"{len(points) - len(failing)}/{len(points)} runs clean")

    if args.shrink and failing:
        from .chaos import save_repro, shrink_schedule
        from .chaos.faults import FaultSchedule

        first = failing[0]
        print(
            f"shrinking {first.config.protocol} seed {first.config.seed} "
            f"({len(first.schedule)} fault windows)..."
        )
        result = shrink_schedule(
            first.config, FaultSchedule.from_json_obj(first.schedule)
        )
        path = save_repro(result, args.corpus_dir)
        print(
            f"minimized to {len(result.shrunk)} fault window(s) in "
            f"{result.runs} runs; repro saved to {path}"
        )
    return 1 if failing else 0


def _cmd_protocols(_args) -> int:
    print("response-time protocols:", ", ".join(sorted(PROTOCOL_DEPLOYERS)))
    print("figures:", ", ".join(sorted(FIGURES)))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "figure": _cmd_figure,
        "run": _cmd_run,
        "availability": _cmd_availability,
        "sweep": _cmd_sweep,
        "report": _cmd_report,
        "chaos": _cmd_chaos,
        "protocols": _cmd_protocols,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
