"""Metrics registry: counters, gauges, bounded-bucket histograms.

A :class:`MetricsRegistry` names metrics with a string plus optional
label key/values (``registry.counter("net.messages", kind="inval")``),
returning the same instrument for the same (name, labels) pair.  All
instruments are plain Python objects with no locks or wall-clock reads,
so recording is cheap and deterministic.

The *disabled* state used throughout the repo is simply the absence of
a registry (``Network.obs is None``); for code that wants to record
unconditionally, :data:`NULL_METRICS` is a registry whose instruments
accept and discard everything.

Histograms are **bounded**: a fixed tuple of upper bounds plus an
implicit ``+inf`` bucket, so memory is O(buckets) no matter how many
samples a chaos campaign feeds in.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "LATENCY_BUCKETS_MS",
    "SIZE_BUCKETS_BYTES",
    "DEPTH_BUCKETS",
]

#: one-way delay / latency bucket bounds (ms) — spans the paper's 8 ms
#: LAN link through multi-round WAN retransmission backoffs
LATENCY_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0,
)

#: message size bucket bounds (bytes), powers of four
SIZE_BUCKETS_BYTES = (16.0, 64.0, 256.0, 1_024.0, 4_096.0, 16_384.0)

#: queue-depth bucket bounds (entries) for the kernel probes
DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1_024.0)

LabelItems = Tuple[Tuple[str, str], ...]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Bounded-bucket histogram: counts per upper bound plus ``+inf``.

    ``bounds`` must be sorted ascending.  A sample lands in the first
    bucket whose bound is >= the sample (``bisect_left``), or the
    overflow bucket.  ``sum``/``count``/``max`` ride along so means and
    rates fall out without keeping samples.
    """

    __slots__ = ("bounds", "buckets", "count", "sum", "max")

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKETS_MS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile sample
        (``max`` for the overflow bucket); 0 when empty."""
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def quantile_interpolated(self, q: float) -> float:
        """The q-quantile estimated by linear interpolation inside the
        bucket that holds the q-th ranked sample.

        Error bounds: the estimate is always within the width of the
        bucket the sample landed in (``bounds[i] - bounds[i-1]``, or
        ``max - bounds[-1]`` for the overflow bucket, where the true
        observed maximum caps the interpolation).  Samples inside a
        bucket are assumed uniformly spread; with the repo's geometric
        bucket ladders the relative error is bounded by the bucket
        growth factor, independent of sample count.
        """
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for i, n in enumerate(self.buckets):
            if seen + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else max(self.max, lo)
                # position of the ranked sample within this bucket
                frac = (rank - seen) / n
                return lo + (hi - lo) * frac
            seen += n
        return self.max

    def summary(self) -> Dict[str, float]:
        """Count, exact sum/mean/max, and interpolated p50/p95/p99.

        Percentiles come from :meth:`quantile_interpolated`, so each is
        accurate to within the width of its bucket (see there for the
        bound); count, sum, mean and max are exact.
        """
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "max": self.max,
            "p50": self.quantile_interpolated(0.50),
            "p95": self.quantile_interpolated(0.95),
            "p99": self.quantile_interpolated(0.99),
        }

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
        }


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Named instruments, deduplicated by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Any] = {}

    def _get(self, name: str, labels: Dict[str, Any], factory):
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(name, labels, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[float] = LATENCY_BUCKETS_MS,
                  **labels: Any) -> Histogram:
        return self._get(name, labels, lambda: Histogram(bounds))

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Tuple[str, LabelItems, Any]]:
        """(name, labels, metric) triples in sorted (deterministic) order."""
        for (name, labels) in sorted(self._metrics):
            yield name, labels, self._metrics[(name, labels)]

    def find(self, name: str, **labels: Any) -> Optional[Any]:
        """The instrument if it was ever recorded, else ``None``."""
        return self._metrics.get((name, _label_items(labels)))

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-ready dump of every instrument, deterministically ordered."""
        out = []
        for name, labels, metric in self:
            entry = {"name": name, "labels": dict(labels)}
            entry.update(metric.snapshot())
            out.append(entry)
        return out


class _NullInstrument:
    """Accepts every recording call and discards it."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0
    max = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def quantile_interpolated(self, q: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {"count": 0.0, "sum": 0.0, "mean": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "null"}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """The cheap no-op default: every instrument is the same black hole."""

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Sequence[float] = (),
                  **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def find(self, name: str, **labels: Any) -> None:
        return None

    def snapshot(self) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())


NULL_METRICS = NullMetricsRegistry()
