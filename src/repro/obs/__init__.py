"""Unified observability: causal spans, metrics, timeline exporters.

The layer is opt-in end to end.  A disabled run carries exactly one
extra attribute (``Network.obs is None``) and the kernel is untouched,
so the PR-1 microbench gate guards the zero-overhead claim.  When
enabled, :class:`~repro.obs.probes.Observability` threads span ids
through message metadata to build a causal op→round→message tree, and
the exporters in :mod:`repro.obs.export` render it as deterministic
JSONL or a Perfetto-loadable Chrome trace.
"""

from .budget import LatencyBudget, format_budget, latency_budget
from .critpath import (
    PHASES,
    OpAttribution,
    Segment,
    TraceIndex,
    attribute_op,
    attribute_trace,
    build_index,
    format_attribution,
    format_attributions,
)
from .export import (
    format_top_slow,
    select_spans,
    spans_to_chrome,
    spans_to_jsonl,
    top_slow_json,
)
from .metrics import (
    DEPTH_BUCKETS,
    LATENCY_BUCKETS_MS,
    NULL_METRICS,
    SIZE_BUCKETS_BYTES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .probes import KernelProbe, Observability, collect_protocol_metrics
from .spans import Span, SpanEvent, SpanTracer

__all__ = [
    "Span",
    "SpanEvent",
    "SpanTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "LATENCY_BUCKETS_MS",
    "SIZE_BUCKETS_BYTES",
    "DEPTH_BUCKETS",
    "Observability",
    "KernelProbe",
    "collect_protocol_metrics",
    "spans_to_jsonl",
    "spans_to_chrome",
    "select_spans",
    "format_top_slow",
    "top_slow_json",
    "PHASES",
    "Segment",
    "OpAttribution",
    "TraceIndex",
    "build_index",
    "attribute_op",
    "attribute_trace",
    "format_attribution",
    "format_attributions",
    "LatencyBudget",
    "latency_budget",
    "format_budget",
]
