"""Latency budget tables: phase × percentile, per operation group.

A budget table aggregates the per-op phase attributions from
:mod:`repro.obs.critpath` into one bounded histogram per (operation
group, phase) — operation groups are ``read[hit]``, ``read[miss]``,
``write``, ``app.read``, … (see :meth:`OpAttribution.group_key`) — plus
one end-to-end histogram per group.  Percentiles use
:meth:`Histogram.summary` (bucket-interpolated, error bounded by bucket
width); means are exact (sum/count).

Zero durations are observed too, so a phase's mean over a group is the
true average contribution of that phase to that group's latency — the
measured form of the paper's Figure 6 story: DQVL local-hit reads carry
~zero ``quorum_wait`` while writes and renewals pay it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from .critpath import PHASES, OpAttribution
from .metrics import LATENCY_BUCKETS_MS, Histogram

__all__ = [
    "LatencyBudget",
    "latency_budget",
    "format_budget",
]

#: fine-grained lower end: many phases are sub-millisecond
BUDGET_BUCKETS_MS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0,
)


class LatencyBudget:
    """Per-group, per-phase latency histograms with a total per group."""

    def __init__(self) -> None:
        self._groups: Dict[str, Dict[str, Histogram]] = {}

    def observe(self, att: OpAttribution) -> None:
        group = self._groups.setdefault(att.group_key(), {})
        phases = att.phases
        for phase in PHASES:
            hist = group.get(phase)
            if hist is None:
                hist = group[phase] = Histogram(BUDGET_BUCKETS_MS)
            hist.observe(phases[phase])
        total = group.get("total")
        if total is None:
            total = group["total"] = Histogram(LATENCY_BUCKETS_MS)
        total.observe(att.total)

    @property
    def groups(self) -> Dict[str, Dict[str, Histogram]]:
        return self._groups

    def to_json_obj(self) -> Dict[str, Any]:
        """Deterministic JSON-ready form: group → phase → summary."""
        out: Dict[str, Any] = {}
        for group in sorted(self._groups):
            phases = self._groups[group]
            entry: Dict[str, Any] = {}
            for phase in (*PHASES, "total"):
                hist = phases.get(phase)
                if hist is not None:
                    entry[phase] = hist.summary()
            out[group] = entry
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_json_obj(), sort_keys=True,
                          separators=(",", ":")) + "\n"


def latency_budget(attributions: Iterable[OpAttribution]) -> LatencyBudget:
    """Fold *attributions* into a budget table."""
    budget = LatencyBudget()
    for att in attributions:
        budget.observe(att)
    return budget


def format_budget(budget: LatencyBudget, title: str = "") -> str:
    """Render the budget as a text table: one block per op group,
    one row per phase that ever contributed, mean/p50/p95/p99 columns."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not budget.groups:
        lines.append("  (no attributed operations)")
        return "\n".join(lines) + "\n"
    header = f"  {'phase':<12} {'mean':>9} {'p50':>9} {'p95':>9} {'p99':>9}"
    for group in sorted(budget.groups):
        phases = budget.groups[group]
        total = phases.get("total")
        count = int(total.count) if total is not None else 0
        lines.append(f"{group}  (n={count})")
        lines.append(header)
        for phase in (*PHASES, "total"):
            hist = phases.get(phase)
            if hist is None or (phase != "total" and hist.sum == 0.0):
                continue
            s = hist.summary()
            lines.append(
                f"  {phase:<12} {s['mean']:>9.3f} {s['p50']:>9.3f} "
                f"{s['p95']:>9.3f} {s['p99']:>9.3f}"
            )
    return "\n".join(lines) + "\n"
