"""Span-based causal tracing.

A :class:`Span` is a named interval of simulated time attributed to one
node, optionally parented to another span; a :class:`SpanTracer`
collects spans and point :class:`SpanEvent` records in emission order.
Together they turn a run into a *causal tree per operation*:

* a client operation (``category="op"``) opens a root span;
* each QRPC round, lease renewal, or invalidation push opens a child
  span (``category="qrpc"``, ``"lease"``, ``"inval"``);
* message send/receive events attach to spans via the ``span_id``
  threaded through :class:`~repro.sim.messages.Message` metadata —
  including across nodes, because a server handler parents its own
  spans on the ``span_id`` of the request it is processing.

Determinism contract
--------------------
Span ids are allocated from a per-tracer counter starting at 1, span
and event lists are append-ordered by the (deterministic) simulation,
and no wall-clock or process-global state is recorded.  Two runs with
the same seed therefore produce identical span trees, which is what
makes the exporters in :mod:`repro.obs.export` byte-reproducible.

Tracing is opt-in: the disabled state is simply ``None`` (see
``Network.obs``), so instrumented code guards with one ``is not None``
check and pays nothing when observability is off.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Union

from ..sim.kernel import Simulator

__all__ = ["Span", "SpanEvent", "SpanTracer"]

SpanRef = Union["Span", int, None]


def _span_id_of(ref: SpanRef) -> Optional[int]:
    if ref is None or isinstance(ref, int):
        return ref
    return ref.span_id


class Span:
    """One named interval, attributed to a node, in a causal tree."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "category",
                 "node", "start", "end", "attrs")

    def __init__(
        self,
        tracer: "SpanTracer",
        span_id: int,
        name: str,
        category: str,
        node: str,
        start: float,
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = attrs or {}

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length in ms (0 while unfinished)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def annotate(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (last write wins per key)."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event attached to this span."""
        self._tracer.event(name, span=self, node=self.node, **attrs)

    def finish(self, **attrs: Any) -> "Span":
        """Close the span at the current simulated time (idempotent)."""
        if attrs:
            self.attrs.update(attrs)
        if self.end is None:
            self.end = self._tracer.sim.now
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"..{self.end:g}" if self.end is not None else "..?"
        return (f"<Span #{self.span_id} {self.category}:{self.name} "
                f"@{self.node} [{self.start:g}{state}]>")


class SpanEvent:
    """A point occurrence, optionally attached to a span."""

    __slots__ = ("time", "name", "span_id", "node", "attrs")

    def __init__(self, time: float, name: str, span_id: Optional[int],
                 node: str, attrs: Dict[str, Any]) -> None:
        self.time = time
        self.name = name
        self.span_id = span_id
        self.node = node
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ref = f" span={self.span_id}" if self.span_id is not None else ""
        return f"<SpanEvent {self.name} @{self.node} t={self.time:g}{ref}>"


class SpanTracer:
    """Collects spans and events for one simulation run.

    Parameters
    ----------
    sim:
        The simulator whose clock timestamps every record.
    max_records:
        Optional bound on ``len(spans) + len(events)``; once reached,
        new records are counted in :attr:`dropped` and discarded (spans
        already started keep working — only their registration is
        bounded, so long campaigns cannot grow memory without limit).
    """

    def __init__(self, sim: Simulator, max_records: Optional[int] = None) -> None:
        self.sim = sim
        self.spans: List[Span] = []
        self.events: List[SpanEvent] = []
        self.max_records = max_records
        self.dropped = 0
        self._next_id = 1

    # -- recording --------------------------------------------------------

    def _room(self) -> bool:
        if self.max_records is None:
            return True
        if len(self.spans) + len(self.events) < self.max_records:
            return True
        self.dropped += 1
        return False

    def span(self, name: str, category: str = "span", node: str = "",
             parent: SpanRef = None, **attrs: Any) -> Span:
        """Open a new span at the current simulated time."""
        span = Span(
            self,
            span_id=self._next_id,
            name=name,
            category=category,
            node=node,
            start=self.sim.now,
            parent_id=_span_id_of(parent),
            attrs=attrs or None,
        )
        self._next_id += 1
        if self._room():
            self.spans.append(span)
        return span

    def event(self, name: str, span: SpanRef = None, node: str = "",
              **attrs: Any) -> None:
        """Record a point event at the current simulated time."""
        if self._room():
            self.events.append(
                SpanEvent(self.sim.now, name, _span_id_of(span), node, attrs)
            )

    # -- queries ----------------------------------------------------------

    def by_id(self, span_id: int) -> Optional[Span]:
        for span in self.spans:
            if span.span_id == span_id:
                return span
        return None

    def roots(self) -> List[Span]:
        """Spans with no recorded parent (client ops, background work)."""
        ids = {s.span_id for s in self.spans}
        return [s for s in self.spans
                if s.parent_id is None or s.parent_id not in ids]

    def children(self, parent: SpanRef) -> List[Span]:
        pid = _span_id_of(parent)
        return [s for s in self.spans if s.parent_id == pid]

    def subtree(self, root: SpanRef) -> Iterator[Span]:
        """The span and all descendants, depth-first in id order."""
        rid = _span_id_of(root)
        span = self.by_id(rid) if rid is not None else None
        if span is None:
            return
        stack = [span]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(reversed(self.children(current.span_id)))

    def filter(self, category: Optional[str] = None,
               name: Optional[str] = None,
               node: Optional[str] = None) -> List[Span]:
        out = self.spans
        if category is not None:
            out = [s for s in out if s.category == category]
        if name is not None:
            out = [s for s in out if s.name == name]
        if node is not None:
            out = [s for s in out if s.node == node]
        return list(out)

    def op_spans(self) -> List[Span]:
        """Root client-operation spans, in start order."""
        return self.filter(category="op")

    def events_for(self, span: SpanRef) -> List[SpanEvent]:
        sid = _span_id_of(span)
        return [e for e in self.events if e.span_id == sid]

    def top_slow(self, n: int = 5) -> List[Span]:
        """The *n* slowest finished operation spans, slowest first."""
        done = [s for s in self.op_spans() if s.finished]
        done.sort(key=lambda s: (-s.duration, s.span_id))
        return done[:n]
