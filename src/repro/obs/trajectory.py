"""Perf-trajectory tracking: phase-level latency regression detection.

A **trajectory point** is the per-workload, per-group, per-phase mean
latency of the canonical attribution workloads — small, fully
deterministic traced runs (fixed seed, fixed op mix, simulated time
only), so a point depends on the *code*, never on the machine or the
wall clock: recording the same tree twice yields byte-identical JSON.

``BENCH_latency.json`` holds the committed history (a list of points,
newest last).  The CI gate re-measures the canonical workloads and
compares each attributed phase against the last committed point:

* a phase **regresses** when its mean grows by more than
  ``threshold`` (default 20%) *and* by more than ``floor_ms``
  (default 0.5 ms — sub-bucket jitter on near-zero phases is noise,
  not regression);
* phases that disappear or shrink never fail the gate (improvements
  are recorded, not punished);
* a brand-new workload/group/phase passes (there is nothing to
  regress against) and enters the history on the next ``--record``.

``repro why --gate`` runs the comparison; ``repro why --record``
appends the current measurement to the history.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, NamedTuple, Optional

__all__ = [
    "CANONICAL_WORKLOADS",
    "Regression",
    "measure_workloads",
    "load_history",
    "record_point",
    "compare_to_last",
    "format_regressions",
    "DEFAULT_HISTORY_PATH",
]

DEFAULT_HISTORY_PATH = "BENCH_latency.json"

#: the canonical deterministic workloads: (name, protocol, write_ratio)
#: — seed 0, 2 clients × 40 ops on 3 edges, locality 1.0, traced
CANONICAL_WORKLOADS = (
    ("dqvl", "dqvl", 0.2),
    ("majority", "majority", 0.2),
)


class Regression(NamedTuple):
    workload: str
    group: str
    phase: str
    before_ms: float
    after_ms: float

    @property
    def ratio(self) -> float:
        return self.after_ms / self.before_ms if self.before_ms else float("inf")


def measure_workloads(
    workloads=CANONICAL_WORKLOADS,
    *,
    ops: int = 40,
    clients: int = 2,
    edges: int = 3,
    seed: int = 0,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Run the canonical workloads traced and return the trajectory
    point: workload → op group → phase → mean milliseconds.

    Everything is simulated time under a fixed seed, so the result is a
    pure function of the repository's code.
    """
    from ..harness.experiment import run_response_time
    from ..scenario import ScenarioConfig
    from .budget import latency_budget
    from .critpath import attribute_trace

    point: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, protocol, write_ratio in workloads:
        config = ScenarioConfig(
            protocol=protocol,
            seed=seed,
            write_ratio=write_ratio,
            ops_per_client=ops,
            num_clients=clients,
            num_edges=edges,
        ).to_experiment(locality=1.0, trace=True)
        result = run_response_time(config)
        obs = result.obs
        assert obs is not None, "traced run must attach Observability"
        budget = latency_budget(attribute_trace(obs.tracer))
        groups: Dict[str, Dict[str, float]] = {}
        for group in sorted(budget.groups):
            phases = budget.groups[group]
            groups[group] = {
                phase: hist.mean
                for phase, hist in sorted(phases.items())
            }
        point[name] = groups
    return point


def load_history(path: str = DEFAULT_HISTORY_PATH) -> List[Dict[str, Any]]:
    """The committed trajectory points, oldest first ([] when absent)."""
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        doc = json.load(fh)
    return doc.get("points", [])


def record_point(
    point: Dict[str, Dict[str, Dict[str, float]]],
    path: str = DEFAULT_HISTORY_PATH,
    *,
    label: Optional[str] = None,
    keep: int = 20,
) -> str:
    """Append *point* to the history at *path* (bounded to *keep*
    entries) and rewrite it with sorted keys — re-recording an
    identical measurement yields a byte-identical file."""
    points = load_history(path)
    entry: Dict[str, Any] = {"workloads": point}
    if label:
        entry["label"] = label
    points.append(entry)
    doc = {"version": 1, "points": points[-keep:]}
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, indent=1)
        fh.write("\n")
    return path


def compare_to_last(
    point: Dict[str, Dict[str, Dict[str, float]]],
    history: List[Dict[str, Any]],
    *,
    threshold: float = 0.20,
    floor_ms: float = 0.5,
) -> List[Regression]:
    """Phases of *point* that regressed versus the last history entry.

    A phase fails when it grew by more than *threshold* (relative) AND
    more than *floor_ms* (absolute).  Empty history → no regressions.
    """
    if not history:
        return []
    last = history[-1].get("workloads", {})
    regressions: List[Regression] = []
    for workload in sorted(point):
        baseline_groups = last.get(workload)
        if baseline_groups is None:
            continue
        for group in sorted(point[workload]):
            baseline_phases = baseline_groups.get(group)
            if baseline_phases is None:
                continue
            for phase in sorted(point[workload][group]):
                after = point[workload][group][phase]
                before = baseline_phases.get(phase)
                if before is None:
                    continue
                if after - before > floor_ms and after > before * (1 + threshold):
                    regressions.append(Regression(
                        workload=workload, group=group, phase=phase,
                        before_ms=before, after_ms=after,
                    ))
    return regressions


def format_regressions(regressions: List[Regression]) -> str:
    if not regressions:
        return "latency trajectory: no phase regressions\n"
    lines = [f"latency trajectory: {len(regressions)} phase regression(s)"]
    for r in regressions:
        lines.append(
            f"  {r.workload}/{r.group}/{r.phase}: "
            f"{r.before_ms:.3f} ms -> {r.after_ms:.3f} ms "
            f"({(r.ratio - 1) * 100:+.0f}%)"
        )
    return "\n".join(lines) + "\n"
