"""Critical-path extraction and per-phase latency attribution.

Every finished client operation span is decomposed into a contiguous
sequence of :class:`Segment`\\ s that partitions ``[op.start, op.end]``
exactly — the **critical path**: the chain of message legs, server
windows, quorum waits and backoffs that actually bounded completion.
Each segment carries one phase from :data:`PHASES`:

``client``
    time at the caller between protocol actions (request assembly,
    scheduling, the gap between a write's two quorum calls);
``net_request`` / ``net_reply``
    wire transit of the request/reply leg that bounded completion,
    taken from the ``msg_send``/``msg_recv`` events of the first reply
    that arrived in the completing round;
``server``
    the responder's handling window (request delivery → reply send)
    net of any lease/invalidation sub-work;
``lease`` / ``inval``
    lease validation/renewal and write-invalidation detours, recursed
    into their own rounds when they themselves ran QRPC;
``quorum_wait``
    the straggler wait: the gap between the *first* reply of the
    completing round and the k-th reply that formed the quorum (zero
    for read-one / local-hit paths — the paper's Figure 6 story);
``retry``
    a full round that timed out (or died with its caller) and had to
    be retransmitted;
``backoff``
    deliberate waiting: inter-round backoff gaps and a client sleeping
    out a shed write's ``retry_after`` hint;
``degraded``
    a front end serving from last-known state instead of storage;
``other``
    intervals the trace does not explain (missing events degrade
    precision, never conservation).

Determinism and conservation contract
-------------------------------------
The analyzer is a **pure function of the trace**: it reads only span
ids, simulated timestamps, node names and event attributes — never the
simulator, wall clocks, or process-global state — so two runs with the
same seed attribute identically, byte for byte.  Segments are emitted
through a clamped monotone cursor (:class:`_Builder`), so they always
partition the op interval exactly: ``sum(phase durations) ==
end - start`` up to float addition error (checked to 1e-6 in tests and
the CI smoke).  See DESIGN.md §15 for the extraction rules.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from .spans import Span, SpanEvent, SpanTracer

__all__ = [
    "PHASES",
    "Segment",
    "OpAttribution",
    "TraceIndex",
    "build_index",
    "attribute_op",
    "attribute_trace",
    "format_attribution",
    "format_attributions",
]

#: the phase taxonomy, in display order
PHASES = (
    "client",
    "net_request",
    "server",
    "lease",
    "inval",
    "net_reply",
    "quorum_wait",
    "retry",
    "backoff",
    "degraded",
    "other",
)

_EPS = 1e-9


class Segment(NamedTuple):
    """One critical-path interval attributed to a single phase."""

    start: float
    end: float
    phase: str
    node: str
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class OpAttribution:
    """One operation's critical path and phase budget."""

    __slots__ = ("op", "end", "segments")

    def __init__(self, op: Span, end: float, segments: List[Segment]) -> None:
        self.op = op
        self.end = end
        self.segments = segments

    @property
    def total(self) -> float:
        return self.end - self.op.start

    @property
    def phases(self) -> Dict[str, float]:
        """Per-phase totals (ms); every phase present, zeros included."""
        out = {phase: 0.0 for phase in PHASES}
        for seg in self.segments:
            out[seg.phase] += seg.duration
        return out

    @property
    def conservation_error(self) -> float:
        """|sum of segments − op latency| — must be ≈ 0 by construction."""
        return abs(sum(s.duration for s in self.segments) - self.total)

    def group_key(self) -> str:
        """Budget-table grouping: op name, split by hit/miss when the
        span recorded one, with app-level ops prefixed ``app.``."""
        name = self.op.name
        if self.op.attrs.get("path") == "app":
            name = f"app.{name}"
        if self.op.attrs.get("degraded") is True:
            return f"{name}[degraded]"
        hit = self.op.attrs.get("hit")
        if hit is True:
            return f"{name}[hit]"
        if hit is False:
            return f"{name}[miss]"
        return name

    def to_json_obj(self) -> Dict[str, Any]:
        """JSON-ready form; deterministic (span ids, sim times, nodes)."""
        return {
            "span_id": self.op.span_id,
            "name": self.op.name,
            "group": self.group_key(),
            "key": self.op.attrs.get("key"),
            "node": self.op.node,
            "status": self.op.attrs.get("status"),
            "start_ms": self.op.start,
            "duration_ms": self.total,
            "phases": self.phases,
            "critical_path": [
                {
                    "start_ms": s.start,
                    "end_ms": s.end,
                    "phase": s.phase,
                    "node": s.node,
                    "detail": s.detail,
                }
                for s in self.segments
            ],
        }


# ---------------------------------------------------------------------------
# trace index
# ---------------------------------------------------------------------------

class TraceIndex:
    """One pass over the tracer, indexed for attribution lookups."""

    __slots__ = ("tracer", "spans_by_id", "_children", "msgs", "reply_of",
                 "requests_by_span", "replies_by_call", "events_by_span")

    def __init__(self, tracer: SpanTracer) -> None:
        self.tracer = tracer
        self.spans_by_id: Dict[int, Span] = {
            s.span_id: s for s in tracer.spans
        }
        self._children: Dict[int, List[Span]] = {}
        for span in sorted(tracer.spans, key=lambda s: (s.start, s.span_id)):
            if span.parent_id is not None:
                self._children.setdefault(span.parent_id, []).append(span)
        #: raw msg id → {send, recv, src, dst, kind, span, re}
        self.msgs: Dict[int, Dict[str, Any]] = {}
        #: request msg id → first reply msg id
        self.reply_of: Dict[int, int] = {}
        #: sending span id → its outbound *request* msg ids, send order
        self.requests_by_span: Dict[Optional[int], List[int]] = {}
        #: call key (first round's span id) → reply_k_of_n events
        self.replies_by_call: Dict[int, List[SpanEvent]] = {}
        self.events_by_span: Dict[int, List[SpanEvent]] = {}
        for event in tracer.events:
            if event.span_id is not None:
                self.events_by_span.setdefault(event.span_id, []).append(event)
            name = event.name
            if name == "msg_send":
                mid = event.attrs.get("msg")
                if not isinstance(mid, int):
                    continue
                info = self.msgs.setdefault(mid, {})
                info["send"] = event.time
                info["src"] = event.node
                info["dst"] = event.attrs.get("dst")
                info["kind"] = event.attrs.get("kind")
                info["span"] = event.span_id
                re = event.attrs.get("re")
                if isinstance(re, int):
                    info["re"] = re
                    self.reply_of.setdefault(re, mid)
                else:
                    self.requests_by_span.setdefault(
                        event.span_id, []
                    ).append(mid)
            elif name == "msg_recv":
                mid = event.attrs.get("msg")
                if isinstance(mid, int):
                    self.msgs.setdefault(mid, {})["recv"] = event.time
            elif name == "reply_k_of_n":
                span = self.spans_by_id.get(event.span_id)
                key = event.span_id
                if span is not None:
                    key = span.attrs.get("call", span.span_id)
                if isinstance(key, int):
                    self.replies_by_call.setdefault(key, []).append(event)

    def children(self, span_id: Optional[int]) -> List[Span]:
        if span_id is None:
            return []
        return self._children.get(span_id, [])

    def events(self, span_id: Optional[int]) -> List[SpanEvent]:
        if span_id is None:
            return []
        return self.events_by_span.get(span_id, [])

    def root_ops(self) -> List[Span]:
        """Finished top-level operation spans, in start order.

        With front ends in the path the application-level op is the
        root and the store op is its child — only the root is
        attributed, so no millisecond is counted twice."""
        return [
            s for s in sorted(self.tracer.spans,
                              key=lambda s: (s.start, s.span_id))
            if s.category == "op" and s.finished
            and (s.parent_id is None or s.parent_id not in self.spans_by_id)
        ]


def build_index(tracer: SpanTracer) -> TraceIndex:
    """Index *tracer* for attribution (one linear pass)."""
    return TraceIndex(tracer)


# ---------------------------------------------------------------------------
# segment builder
# ---------------------------------------------------------------------------

#: phases a lease/inval detour absorbs; quorum_wait / retry / backoff
#: stay distinct so straggling and retransmission remain visible even
#: inside a detour
_DETOUR_ABSORBS = frozenset(
    ("client", "net_request", "net_reply", "server", "other")
)


class _Builder:
    """Emits segments through a clamped monotone cursor over [lo, hi].

    Every ``cut`` clamps its timestamp into ``[cursor, hi]``, so the
    emitted segments always form an exact partition of the interval no
    matter how noisy (overlapping, out-of-window, missing) the
    underlying records are — imprecision degrades phase *labels*, never
    conservation.

    With a *detour* set (``lease`` / ``inval`` — the builder sits
    inside a validation or invalidation subtree), processing and
    network phases are folded into the detour phase: the op paid that
    time *because of* the detour, which is what the budget should say.
    The original fine-grained label survives in the segment detail.
    """

    __slots__ = ("lo", "hi", "cursor", "node", "segments", "detour")

    def __init__(self, lo: float, hi: float, node: str,
                 detour: Optional[str] = None) -> None:
        self.lo = lo
        self.hi = hi
        self.cursor = lo
        self.node = node
        self.detour = detour
        self.segments: List[Segment] = []

    def cut(self, t: float, phase: str, node: Optional[str] = None,
            detail: str = "") -> None:
        if self.detour is not None and phase in _DETOUR_ABSORBS:
            if not detail:
                detail = phase
            phase = self.detour
        t = min(max(t, self.cursor), self.hi)
        if t > self.cursor:
            self.segments.append(
                Segment(self.cursor, t, phase, node or self.node, detail)
            )
            self.cursor = t

    def fill(self, phase: str, detail: str = "") -> None:
        self.cut(self.hi, phase, detail=detail)

    def absorb(self, segments: List[Segment]) -> None:
        for seg in segments:
            self.cut(seg.end, seg.phase, seg.node, seg.detail)


def _fill_for(span: Span, default: str) -> str:
    if span.category == "lease":
        return "lease"
    if span.category == "inval":
        return "inval"
    return default


def _link_label(m: Dict[str, Any]) -> str:
    return f"{m.get('src', '?')}->{m.get('dst', '?')}"


# ---------------------------------------------------------------------------
# decomposition
# ---------------------------------------------------------------------------

def _span_segments(index: TraceIndex, span: Span, lo: float, hi: float,
                   fill: str, detour: Optional[str] = None) -> List[Segment]:
    """Decompose ``[lo, hi]`` of a caller-located span (an op, a lease
    validation, an invalidation push): its QRPC calls, its direct RPC
    exchanges, and local processing between them."""
    if span.category == "lease":
        detour = "lease"
    elif span.category == "inval":
        detour = "inval"
    b = _Builder(lo, hi, span.node, detour=detour)
    blocks: List[Tuple[float, int, str, Any]] = []
    order = 0

    calls: Dict[int, List[Span]] = {}
    for child in index.children(span.span_id):
        if child.category == "qrpc":
            key = child.attrs.get("call", child.span_id)
            calls.setdefault(key, []).append(child)
        elif child.node == span.node:
            # Local sub-work at the same node (rare); server-side
            # children are reached through the RPC windows below.
            blocks.append((child.start, order, "child", child))
            order += 1
    for rounds in sorted(calls.values(),
                         key=lambda rs: (rs[0].start, rs[0].span_id)):
        blocks.append((rounds[0].start, order, "call", rounds))
        order += 1

    for mid in index.requests_by_span.get(span.span_id, ()):
        m = index.msgs[mid]
        if m.get("src") != span.node or "send" not in m:
            continue
        rep = index.msgs.get(index.reply_of.get(mid, -1))
        if rep is not None and "recv" in rep and "send" in rep:
            blocks.append((m["send"], order, "rpc", (m, rep)))
        else:
            # No reply ever arrived: the wait that follows is a retry.
            blocks.append((m["send"], order, "attempt", m))
        order += 1

    blocks.sort(key=lambda t: (t[0], t[1]))
    gap = fill
    for start, _order, kind, payload in blocks:
        b.cut(start, gap)
        if kind == "call":
            _call_segments(index, payload, b)
            gap = fill
        elif kind == "child":
            child = payload
            c_end = child.end if child.end is not None else b.hi
            if c_end > b.cursor:
                b.absorb(_span_segments(index, child, b.cursor,
                                        min(c_end, b.hi),
                                        _fill_for(child, fill),
                                        detour=b.detour))
            gap = fill
        elif kind == "rpc":
            gap = _rpc_segments(index, span, payload[0], payload[1], b, fill)
        else:  # attempt
            gap = "retry"
    b.fill(gap)
    return b.segments


def _call_segments(index: TraceIndex, rounds: List[Span],
                   b: _Builder) -> None:
    """One QRPC invocation: its rounds in order, inter-round gaps are
    backoff, timed-out rounds are retry, the completing round is
    decomposed along its first reply plus the straggler wait."""
    for r in rounds:
        e = min(r.end if r.end is not None else b.hi, b.hi)
        b.cut(r.start, "backoff", detail="inter-round gap")
        outcome = r.attrs.get("outcome")
        if outcome in ("timeout", "crashed"):
            b.cut(e, "retry", detail=(
                f"attempt {r.attrs.get('attempt')} {outcome} "
                f"({r.attrs.get('replies', 0)} replies)"
            ))
        else:
            _round_segments(index, r, b, e)


def _round_segments(index: TraceIndex, round_span: Span, b: _Builder,
                    e: float) -> None:
    """A completed round ending at quorum time *e*: the interval up to
    the first in-round reply follows that reply's message path; the
    rest — first reply to k-th — is the quorum straggler wait."""
    key = round_span.attrs.get("call", round_span.span_id)
    s0 = b.cursor
    replies = [
        ev for ev in index.replies_by_call.get(key, ())
        if s0 - _EPS < ev.time <= e + _EPS
    ]
    if not replies:
        b.cut(e, "other", detail="no quorum replies recorded")
        return
    first = replies[0]
    _reply_path(index, first, b, min(first.time, e))
    k = replies[-1].attrs.get("k")
    b.cut(e, "quorum_wait",
          detail=f"{len(replies)} replies to quorum (k={k})")


def _reply_path(index: TraceIndex, reply_event: SpanEvent, b: _Builder,
                hi: float) -> None:
    """Decompose up to the first reply's arrival along its request's
    path: send → transit → server window → reply transit."""
    req = index.msgs.get(reply_event.attrs.get("req"), {})
    rep = index.msgs.get(reply_event.attrs.get("msg"), {})
    if "send" not in req or "recv" not in req or "send" not in rep:
        b.cut(hi, "other", detail="incomplete message records")
        return
    b.cut(req["send"], "client")
    b.cut(req["recv"], "net_request", node=_link_label(req),
          detail=req.get("kind") or "")
    _server_window(index, req.get("span"), req.get("dst") or "", b,
                   req["recv"], min(rep["send"], hi))
    b.cut(hi, "net_reply", node=_link_label(rep),
          detail=rep.get("kind") or "")


def _server_window(index: TraceIndex, parent_sid: Optional[int],
                   server_node: str, b: _Builder, lo: float, hi: float,
                   fill: str = "server") -> bool:
    """The responder's handling window: recurse into spans parented on
    the request's span id (lease validations, invalidation pushes, a
    front end's store operation); the remainder is server time — or a
    degraded-serve detour when the handler answered from last-known
    state.  Returns True when the window shed a write (the caller then
    labels the following client gap as backoff)."""
    shed = False
    degraded = False
    for ev in index.events(parent_sid):
        if lo - _EPS <= ev.time <= hi + _EPS:
            if ev.name == "write_shed":
                shed = True
            elif ev.name == "degraded_serve":
                degraded = True
    window_fill = "degraded" if degraded else fill
    for child in index.children(parent_sid):
        if child.category == "qrpc":
            continue
        c_end = child.end if child.end is not None else hi
        if c_end <= b.cursor or child.start >= hi:
            continue
        b.cut(child.start, window_fill, node=server_node)
        b.absorb(_span_segments(index, child, b.cursor, min(c_end, hi),
                                _fill_for(child, window_fill),
                                detour=b.detour))
    b.cut(hi, window_fill, node=server_node)
    return shed


def _rpc_segments(index: TraceIndex, span: Span, m: Dict[str, Any],
                  rep: Dict[str, Any], b: _Builder, fill: str) -> str:
    """One direct request/reply exchange on the span itself (app→front
    end hops, primary/backup and ROWA-Async attempts, invalidation
    pushes).  Returns the phase for the gap that follows."""
    hi = min(rep["recv"], b.hi)
    if "recv" not in m or m["recv"] >= hi:
        b.cut(hi, "other", detail="incomplete message records")
        return fill
    b.cut(m["recv"], "net_request", node=_link_label(m),
          detail=m.get("kind") or "")
    shed = _server_window(index, m.get("span"), m.get("dst") or "", b,
                          m["recv"], min(rep["send"], hi))
    b.cut(hi, "net_reply", node=_link_label(rep),
          detail=rep.get("kind") or "")
    return "backoff" if shed else fill


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def attribute_op(index: TraceIndex, op: Span) -> OpAttribution:
    """Attribute one operation span (must be finished for exact totals)."""
    end = op.end if op.end is not None else op.start
    segments = _span_segments(index, op, op.start, end,
                              _fill_for(op, "client"))
    return OpAttribution(op=op, end=end, segments=segments)


def attribute_trace(tracer: SpanTracer) -> List[OpAttribution]:
    """Attribute every finished root operation span of *tracer*."""
    index = build_index(tracer)
    return [attribute_op(index, op) for op in index.root_ops()]


# ---------------------------------------------------------------------------
# human-readable rendering
# ---------------------------------------------------------------------------

def format_attribution(att: OpAttribution) -> str:
    """One op's critical path as an indented text tree."""
    op = att.op
    lines = [
        f"#{op.span_id} {op.name} key={op.attrs.get('key', '?')} "
        f"node={op.node} {att.total:.2f} ms "
        f"(status={op.attrs.get('status', '?')})"
    ]
    for seg in att.segments:
        lines.append(
            f"    {seg.start:10.2f} ms  +{seg.duration:8.2f} ms  "
            f"{seg.phase:<11} @{seg.node}"
            + (f"  {seg.detail}" if seg.detail else "")
        )
    phases = att.phases
    parts = [f"{p}={phases[p]:.2f}" for p in PHASES if phases[p] > 0.0]
    lines.append("    budget: " + (" ".join(parts) or "(zero-length op)"))
    return "\n".join(lines)


def format_attributions(tracer: SpanTracer, n: int = 5) -> str:
    """The *n* slowest ops, each with critical path + phase budget."""
    index = build_index(tracer)
    slow = tracer.top_slow(n)
    if not slow:
        return "no finished operation spans recorded\n"
    out = [f"top {len(slow)} slowest operations (phase attribution):"]
    for op in slow:
        out.append(format_attribution(attribute_op(index, op)))
    return "\n".join(out) + "\n"
