"""The observability context and its kernel/network/protocol probes.

:class:`Observability` bundles one :class:`~repro.obs.spans.SpanTracer`
and one :class:`~repro.obs.metrics.MetricsRegistry` for a run and hooks
them into the layers below:

* **network probes** — installed by :meth:`Observability.install`
  (sets ``network.obs``); the network then reports every accepted send,
  delivery, and drop, feeding per-kind message/byte counters, per-kind
  delivery-latency histograms, and drop/duplicate/unknown-destination
  counters, plus ``msg_send``/``msg_recv`` span events that attach each
  message to the span threaded through its metadata;
* **kernel probes** — a self-rescheduling sampler
  (:class:`KernelProbe`) records ready-deque and timer-heap depth
  histograms while the simulation runs, without touching the kernel's
  hot loop (the kernel itself is unmodified: with observability off the
  microbench-gated fast lane executes exactly the seed's instructions);
* **protocol probes** — :meth:`Observability.finalize` scrapes the
  protocol counters every node already maintains (hits/misses, renewal
  and invalidation rates, epochs, quorum sizes contacted) into gauges.

Everything here is deterministic: probes read simulation state only, so
two runs with the same seed produce identical snapshots.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim.kernel import Simulator
from ..sim.messages import Message
from .metrics import (
    DEPTH_BUCKETS,
    LATENCY_BUCKETS_MS,
    SIZE_BUCKETS_BYTES,
    MetricsRegistry,
)
from .spans import SpanTracer

__all__ = ["Observability", "KernelProbe", "collect_protocol_metrics"]


class KernelProbe:
    """Samples kernel queue depths every *interval_ms* of simulated time.

    The probe reschedules itself only while other work is pending, so it
    never keeps an otherwise-drained simulation alive (and never changes
    when the run ends).
    """

    def __init__(self, sim: Simulator, metrics: MetricsRegistry,
                 interval_ms: float = 100.0) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self.sim = sim
        self.interval_ms = interval_ms
        self.samples = 0
        self._ready_depth = metrics.histogram("kernel.ready_depth", DEPTH_BUCKETS)
        self._timer_depth = metrics.histogram("kernel.timer_depth", DEPTH_BUCKETS)
        self._tombstones = metrics.gauge("kernel.timer_tombstones")
        sim.schedule(interval_ms, self._tick)

    def _tick(self) -> None:
        self.samples += 1
        self._ready_depth.observe(float(len(self.sim._ready)))
        # The timing wheel counts cancelled-but-unswept tombstones in
        # timer_depth; report *live* timers so cancel-heavy keeper churn
        # doesn't inflate the histogram, and track the peak tombstone
        # backlog separately.
        tombstones = getattr(self.sim, "_cancelled_pending", 0)
        self._timer_depth.observe(float(max(0, self.sim.timer_depth - tombstones)))
        if tombstones > self._tombstones.value:
            self._tombstones.set(float(tombstones))
        if self.sim._ready or self.sim.timer_depth:
            self.sim.schedule(self.interval_ms, self._tick)


class Observability:
    """One run's tracer + metrics registry, with layer hooks.

    Build one, :meth:`install` it on the network, run the simulation,
    then :meth:`finalize` to scrape end-of-run kernel and protocol
    state.  The exporters in :mod:`repro.obs.export` consume the
    resulting :attr:`tracer` and :attr:`metrics`.
    """

    def __init__(
        self,
        sim: Simulator,
        tracer: Optional[SpanTracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        max_records: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.tracer = tracer or SpanTracer(sim, max_records=max_records)
        self.metrics = metrics or MetricsRegistry()
        self.kernel_probe: Optional[KernelProbe] = None

    # -- wiring -----------------------------------------------------------

    def install(self, network, kernel_probe_interval_ms: Optional[float] = 100.0):
        """Attach to *network* and start the kernel sampler."""
        network.obs = self
        if kernel_probe_interval_ms is not None:
            self.kernel_probe = KernelProbe(
                self.sim, self.metrics, kernel_probe_interval_ms
            )
        return self

    # -- network hooks (called by Network when ``network.obs`` is set) ----

    def on_send(self, message: Message, size: int) -> None:
        self.metrics.counter("net.messages", kind=message.kind).inc()
        if size:
            self.metrics.counter("net.bytes", kind=message.kind).inc(size)
            self.metrics.histogram(
                "net.message_bytes", SIZE_BUCKETS_BYTES, kind=message.kind
            ).observe(float(size))
        if message.reply_to is not None:
            self.tracer.event(
                "msg_send", span=message.span_id, node=message.src,
                kind=message.kind, msg=message.msg_id, dst=message.dst,
                re=message.reply_to,
            )
        else:
            self.tracer.event(
                "msg_send", span=message.span_id, node=message.src,
                kind=message.kind, msg=message.msg_id, dst=message.dst,
            )

    def on_deliver(self, message: Message) -> None:
        self.metrics.histogram(
            "net.delivery_latency_ms", LATENCY_BUCKETS_MS, kind=message.kind
        ).observe(self.sim.now - message.send_time)
        self.tracer.event(
            "msg_recv", span=message.span_id, node=message.dst,
            kind=message.kind, msg=message.msg_id, src=message.src,
        )

    def on_drop(self, message: Message, reason: str) -> None:
        self.metrics.counter("net.dropped", reason=reason).inc()
        self.tracer.event(
            "msg_drop", span=message.span_id, node=message.dst,
            kind=message.kind, msg=message.msg_id, reason=reason,
        )

    def on_duplicate(self, message: Message) -> None:
        self.metrics.counter("net.duplicated", kind=message.kind).inc()

    # -- latency attribution ----------------------------------------------

    def attributions(self):
        """Per-op critical-path attributions for every traced root op
        (see :mod:`repro.obs.critpath`)."""
        from .critpath import attribute_trace

        return attribute_trace(self.tracer)

    def latency_budget(self):
        """The run's phase × percentile budget table
        (see :mod:`repro.obs.budget`)."""
        from .budget import latency_budget

        return latency_budget(self.attributions())

    # -- end-of-run scrape ------------------------------------------------

    def finalize(self, network=None, deployment=None) -> "Observability":
        """Record end-of-run kernel, network, and protocol metrics."""
        sim = self.sim
        self.metrics.gauge("kernel.events_processed").set(float(sim.events_processed))
        if sim.now > 0:
            self.metrics.gauge("kernel.events_per_sim_sec").set(
                sim.events_processed / (sim.now / 1000.0)
            )
        if network is not None:
            stats = network.stats
            self.metrics.gauge("net.total_messages").set(float(stats.total_messages))
            self.metrics.gauge("net.total_bytes").set(float(stats.total_bytes))
            self.metrics.gauge("net.dropped_total").set(float(stats.dropped))
            self.metrics.gauge("net.duplicated_total").set(float(stats.duplicated))
            self.metrics.gauge("net.unknown_destination").set(
                float(stats.unknown_destination)
            )
        if deployment is not None:
            collect_protocol_metrics(deployment, self.metrics)
        return self


#: node counter attribute -> metric name scraped by the protocol probe
_NODE_COUNTERS = (
    ("read_hits", "proto.read_hits"),
    ("read_misses", "proto.read_misses"),
    ("renewals_sent", "proto.renewals_sent"),
    ("renewals_served", "proto.renewals_served"),
    ("invals_sent", "proto.invals_sent"),
    ("invals_received", "proto.invals_received"),
    ("validations_coalesced", "proto.validations_coalesced"),
    ("writes_applied", "proto.writes_applied"),
    ("writes_suppressed", "proto.writes_suppressed"),
    ("writes_through", "proto.writes_through"),
    ("delayed_enqueued", "proto.delayed_enqueued"),
    ("catchups_started", "resil.catchups_started"),
)

#: front-end counter attribute -> metric name
_FRONT_END_COUNTERS = (
    ("requests_served", "fe.requests_served"),
    ("requests_failed", "fe.requests_failed"),
    ("degraded_reads", "fe.degraded_reads"),
    ("writes_shed", "fe.writes_shed"),
)


def _collect_resilience(holder: Any, metrics: MetricsRegistry,
                        node_id: str) -> None:
    """Scrape a node's / client's NodeResilience counters, if attached."""
    res = getattr(holder, "resilience", None)
    if res is None or not hasattr(res, "detector"):
        return
    metrics.gauge("resil.suspicions", node=node_id).set(
        float(res.detector.suspicions)
    )
    metrics.gauge("resil.hedges_sent", node=node_id).set(float(res.hedges_sent))
    metrics.gauge("resil.adaptive_rounds", node=node_id).set(
        float(res.adaptive_rounds)
    )


def collect_protocol_metrics(deployment: Any, metrics: MetricsRegistry) -> None:
    """Scrape per-node protocol counters into gauges.

    Works for any deployment: nodes are discovered through the cluster
    (IQS+OQS for dual-quorum protocols, ``servers`` otherwise) and only
    the counters a node actually defines are recorded.  DQVL hit rate
    and logical-clock epoch state get derived gauges on top.  Front-end
    service counters (degraded reads, shed writes) and resilience-layer
    counters (suspicions, hedges, adaptive rounds, catch-ups) are
    scraped when those layers are present.
    """
    cluster = deployment.cluster
    if hasattr(cluster, "iqs_nodes"):
        nodes = list(cluster.iqs_nodes) + list(cluster.oqs_nodes)
    elif hasattr(cluster, "servers"):
        nodes = list(cluster.servers)
    else:  # pragma: no cover - all current clusters expose one of the two
        nodes = []
    hits = misses = 0
    for node in nodes:
        for attr, metric_name in _NODE_COUNTERS:
            value = getattr(node, attr, None)
            if value is not None:
                metrics.gauge(metric_name, node=node.node_id).set(float(value))
        _collect_resilience(node, metrics, node.node_id)
        hits += getattr(node, "read_hits", 0)
        misses += getattr(node, "read_misses", 0)
        epoch = getattr(node, "logical_clock", None)
        if epoch is not None and hasattr(epoch, "counter"):
            metrics.gauge("proto.logical_clock", node=node.node_id).set(
                float(epoch.counter)
            )
        leases = getattr(node, "leases", None)
        if leases is not None and hasattr(node, "live_callback_count"):
            metrics.gauge("proto.live_callbacks", node=node.node_id).set(
                float(node.live_callback_count())
            )
    for fe in getattr(deployment, "front_ends", ()) or ():
        for attr, metric_name in _FRONT_END_COUNTERS:
            value = getattr(fe, attr, None)
            if value is not None:
                metrics.gauge(metric_name, node=fe.node_id).set(float(value))
        client = getattr(fe, "store_client", None)
        if client is not None:
            _collect_resilience(client, metrics, getattr(
                client, "node_id", fe.node_id
            ))
    if hits + misses:
        metrics.gauge("proto.read_hit_rate").set(hits / (hits + misses))
