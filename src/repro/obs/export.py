"""Deterministic timeline exporters: JSONL and Chrome trace format.

Two serialisations of one :class:`~repro.obs.spans.SpanTracer`:

* :func:`spans_to_jsonl` — one JSON object per line (``meta`` header,
  then spans, events, fault windows, and an optional metrics snapshot),
  meant for machine diffing and golden-file tests;
* :func:`spans_to_chrome` — the Chrome Trace Format consumed by
  ``chrome://tracing`` and Perfetto: spans become complete (``X``)
  events on one track per node, parent→child causality becomes flow
  (``s``/``f``) arrows, point events become instants (``i``), and chaos
  fault windows render as an annotation track on a separate process row.

Byte-reproducibility contract
-----------------------------
Identical seeds must yield identical bytes.  Three rules enforce it:

1. every ``json.dumps`` uses ``sort_keys=True`` with fixed separators;
2. ordering is derived only from simulation state (span start times,
   per-tracer span ids, emission order) — never dict iteration of
   unsorted inputs or process-global counters;
3. message ids — which come from a process-global counter and therefore
   differ between two in-process runs — are **densified**: remapped to
   1, 2, 3… by first appearance in the event stream.

Attribute values that are not JSON types (e.g. ``LogicalClock``) are
stringified via their deterministic ``__str__``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .spans import Span, SpanEvent, SpanTracer

__all__ = [
    "spans_to_jsonl",
    "spans_to_chrome",
    "select_spans",
    "format_top_slow",
    "top_slow_json",
]

_JSON_KW = {"sort_keys": True, "separators": (",", ":")}


def _sanitize(value: Any) -> Any:
    """Coerce *value* into JSON-serialisable, deterministic form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    return str(value)


def _sanitize_attrs(attrs: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    # Fault.params is a tuple of (name, value) pairs, not a dict.
    if attrs is not None and not isinstance(attrs, dict):
        attrs = dict(attrs)
    return {str(k): _sanitize(v) for k, v in (attrs or {}).items()}


class _MsgIdDenser:
    """Remaps process-global message ids to dense per-export ids.

    Every attribute key that carries a raw message id must be listed in
    ``_KEYS``: ``msg`` (the message itself), ``re`` (the request a reply
    correlates to) and ``req`` (the request behind a quorum reply event).
    Leaving one raw would leak the process-global counter into exports
    and break same-seed byte-identity across runs.
    """

    _KEYS = ("msg", "re", "req")

    def __init__(self) -> None:
        self._map: Dict[int, int] = {}

    def _dense(self, raw: int) -> int:
        dense = self._map.get(raw)
        if dense is None:
            dense = self._map[raw] = len(self._map) + 1
        return dense

    def remap(self, attrs: Dict[str, Any]) -> Dict[str, Any]:
        if not any(isinstance(attrs.get(k), int) for k in self._KEYS):
            return attrs
        attrs = dict(attrs)
        for key in self._KEYS:
            if isinstance(attrs.get(key), int):
                attrs[key] = self._dense(attrs[key])
        return attrs


def select_spans(tracer: SpanTracer,
                 span_filter: Optional[str] = None) -> List[Span]:
    """Spans to export, sorted by (start, id).

    With a *span_filter*, keeps spans whose category or name equals the
    filter string **plus their entire subtrees**, so ``--span-filter op``
    still shows each operation's QRPC rounds.
    """
    spans = sorted(tracer.spans, key=lambda s: (s.start, s.span_id))
    if span_filter is None:
        return spans
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    keep: set = set()
    stack = [s for s in spans
             if s.category == span_filter or s.name == span_filter]
    while stack:
        span = stack.pop()
        if span.span_id in keep:
            continue
        keep.add(span.span_id)
        stack.extend(children.get(span.span_id, ()))
    return [s for s in spans if s.span_id in keep]


def _fault_windows(faults: Optional[Iterable[Any]]) -> List[Any]:
    """Normalise a ``FaultSchedule`` or iterable of faults to a list."""
    if faults is None:
        return []
    inner = getattr(faults, "faults", None)
    return list(inner if inner is not None else faults)


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def spans_to_jsonl(
    tracer: SpanTracer,
    faults: Optional[Iterable[Any]] = None,
    span_filter: Optional[str] = None,
    metrics: Optional[Any] = None,
) -> str:
    """Serialise the trace as deterministic JSON lines.

    Record kinds (``record`` field): ``meta``, ``span``, ``event``,
    ``fault``, ``metric``.  Spans are ordered by (start, id), events by
    emission order, metrics by registry sort order.
    """
    spans = select_spans(tracer, span_filter)
    kept = {s.span_id for s in spans}
    denser = _MsgIdDenser()
    lines: List[str] = []

    def emit(obj: Dict[str, Any]) -> None:
        lines.append(json.dumps(obj, **_JSON_KW))

    emit({
        "record": "meta",
        "version": 1,
        "spans": len(spans),
        "events": len(tracer.events),
        "dropped": tracer.dropped,
        "span_filter": span_filter,
        "sim_now_ms": tracer.sim.now,
    })
    for span in spans:
        emit({
            "record": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "category": span.category,
            "node": span.node,
            "start_ms": span.start,
            "end_ms": span.end,
            "attrs": _sanitize_attrs(span.attrs),
        })
    for event in tracer.events:
        if span_filter is not None and event.span_id not in kept:
            continue
        emit({
            "record": "event",
            "time_ms": event.time,
            "name": event.name,
            "span": event.span_id,
            "node": event.node,
            "attrs": denser.remap(_sanitize_attrs(event.attrs)),
        })
    for fault in _fault_windows(faults):
        emit({
            "record": "fault",
            "kind": fault.kind,
            "start_ms": fault.start,
            "duration_ms": fault.duration,
            "nodes": _sanitize(list(fault.nodes)),
            "groups": _sanitize(list(fault.groups)),
            "params": _sanitize_attrs(fault.params),
        })
    if metrics is not None:
        for entry in metrics.snapshot():
            emit(dict({"record": "metric"}, **entry))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Chrome Trace Format
# ---------------------------------------------------------------------------

_SIM_PID = 1
_CHAOS_PID = 2


def _us(ms: float) -> float:
    """Milliseconds of simulated time → Chrome's microsecond unit."""
    return ms * 1000.0


def _thread_ids(spans: Sequence[Span],
                events: Sequence[SpanEvent]) -> Dict[str, int]:
    nodes = {s.node for s in spans} | {e.node for e in events}
    return {node: i + 1 for i, node in enumerate(sorted(nodes))}


def spans_to_chrome(
    tracer: SpanTracer,
    faults: Optional[Iterable[Any]] = None,
    span_filter: Optional[str] = None,
) -> str:
    """Serialise the trace in Chrome Trace Format (JSON object form).

    Load the output in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``: one process row for the simulation with a
    thread per node, a second process row for chaos fault windows, and
    flow arrows tying every QRPC round / lease renewal / invalidation
    back to the client operation that caused it.
    """
    spans = select_spans(tracer, span_filter)
    kept = {s.span_id for s in spans}
    events = [e for e in tracer.events
              if span_filter is None or e.span_id in kept]
    tids = _thread_ids(spans, events)
    denser = _MsgIdDenser()
    out: List[Dict[str, Any]] = []

    out.append({"ph": "M", "pid": _SIM_PID, "tid": 0,
                "name": "process_name", "args": {"name": "simulation"}})
    for node, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        out.append({"ph": "M", "pid": _SIM_PID, "tid": tid,
                    "name": "thread_name",
                    "args": {"name": node or "(unattributed)"}})

    for span in spans:
        args = _sanitize_attrs(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if not span.finished:
            args["unfinished"] = True
        tid = tids[span.node]
        out.append({
            "ph": "X", "pid": _SIM_PID, "tid": tid,
            "ts": _us(span.start), "dur": _us(span.duration),
            "name": span.name, "cat": span.category, "args": args,
        })
        if span.parent_id in kept:
            parent = tracer.by_id(span.parent_id)
            out.append({
                "ph": "s", "pid": _SIM_PID, "tid": tids[parent.node],
                "ts": _us(span.start), "id": span.span_id,
                "name": "causes", "cat": "flow",
            })
            out.append({
                "ph": "f", "bp": "e", "pid": _SIM_PID, "tid": tid,
                "ts": _us(span.start), "id": span.span_id,
                "name": "causes", "cat": "flow",
            })

    for event in events:
        out.append({
            "ph": "i", "s": "t", "pid": _SIM_PID, "tid": tids[event.node],
            "ts": _us(event.time), "name": event.name, "cat": "event",
            "args": denser.remap(_sanitize_attrs(event.attrs)),
        })

    windows = _fault_windows(faults)
    if windows:
        out.append({"ph": "M", "pid": _CHAOS_PID, "tid": 0,
                    "name": "process_name", "args": {"name": "chaos"}})
        kinds = sorted({f.kind for f in windows})
        fault_tids = {kind: i + 1 for i, kind in enumerate(kinds)}
        for kind in kinds:
            out.append({"ph": "M", "pid": _CHAOS_PID,
                        "tid": fault_tids[kind], "name": "thread_name",
                        "args": {"name": kind}})
        for fault in sorted(windows, key=lambda f: (f.start, f.kind)):
            out.append({
                "ph": "X", "pid": _CHAOS_PID, "tid": fault_tids[fault.kind],
                "ts": _us(fault.start), "dur": _us(fault.duration),
                "name": fault.kind, "cat": "fault",
                "args": {
                    "nodes": _sanitize(list(fault.nodes)),
                    "groups": _sanitize(list(fault.groups)),
                    "params": _sanitize_attrs(fault.params),
                },
            })

    doc = {"traceEvents": out, "displayTimeUnit": "ms"}
    return json.dumps(doc, **_JSON_KW)


# ---------------------------------------------------------------------------
# Human-readable summaries
# ---------------------------------------------------------------------------

def format_top_slow(tracer: SpanTracer, n: int = 5) -> str:
    """A small table of the *n* slowest operations with their rounds."""
    slow = tracer.top_slow(n)
    if not slow:
        return "no finished operation spans recorded\n"
    lines = [f"top {len(slow)} slowest operations:"]
    for span in slow:
        rounds = [c for c in tracer.children(span.span_id)]
        status = span.attrs.get("status", "?")
        lines.append(
            f"  #{span.span_id} {span.name} key={span.attrs.get('key', '?')} "
            f"node={span.node} {span.duration:.2f} ms "
            f"({len(rounds)} child spans, status={status})"
        )
        for child in sorted(rounds, key=lambda s: (s.start, s.span_id)):
            lines.append(
                f"      └ #{child.span_id} {child.category}:{child.name} "
                f"@{child.node} +{child.start - span.start:.2f} ms "
                f"dur={child.duration:.2f} ms"
            )
    return "\n".join(lines) + "\n"


def top_slow_json(tracer: SpanTracer, n: int = 5) -> str:
    """The top-slow ranking with full phase attribution, as sorted-key
    JSON — byte-identical across same-seed runs.

    Every field is derived from per-tracer span ids, simulated times and
    node names; raw message ids never appear, so two runs with the same
    seed serialise to identical bytes (the same contract as the timeline
    exporters above).
    """
    from .critpath import attribute_op, build_index

    index = build_index(tracer)
    ops = []
    for op in tracer.top_slow(n):
        att = attribute_op(index, op)
        ops.append(att.to_json_obj())
    doc = {"version": 1, "top": len(ops), "ops": ops}
    return json.dumps(doc, **_JSON_KW) + "\n"
