"""repro — a reproduction of "Dual-Quorum Replication for Edge Services"
(Gao, Dahlin, Zheng, Alvisi, Iyengar; Middleware 2005).

Quick start::

    from repro.sim import Simulator, Network, ConstantDelay
    from repro.core import build_dqvl_cluster, DqvlConfig

    sim = Simulator(seed=1)
    net = Network(sim, ConstantDelay(40.0))
    cluster = build_dqvl_cluster(
        sim, net,
        iqs_ids=[f"iqs{i}" for i in range(3)],
        oqs_ids=[f"oqs{i}" for i in range(3)],
        config=DqvlConfig(lease_length_ms=5_000),
    )
    client = cluster.client("fe0", prefer_oqs="oqs0")

    def scenario():
        yield from client.write("x", "hello")
        result = yield from client.read("x")
        return result.value

    assert sim.run_process(scenario()) == "hello"

Package layout (see DESIGN.md for the full inventory):

* :mod:`repro.sim` — deterministic discrete-event simulation substrate;
* :mod:`repro.quorum` — quorum systems and QRPC;
* :mod:`repro.core` — the dual-quorum protocols (basic and DQVL);
* :mod:`repro.protocols` — baselines (primary/backup, majority, ROWA,
  ROWA-Async);
* :mod:`repro.consistency` — histories and semantics checkers;
* :mod:`repro.edge` — the edge-service topology and deployments;
* :mod:`repro.workload` — workload generators and the closed-loop runner;
* :mod:`repro.analysis` — the paper's analytical models (Figures 8-9);
* :mod:`repro.harness` — experiment runner, metrics, reporting.
"""

from .types import ZERO_LC, LogicalClock, ReadResult, WriteResult

__version__ = "1.0.0"

__all__ = ["LogicalClock", "ZERO_LC", "ReadResult", "WriteResult", "__version__"]
