"""Base class for simulated protocol nodes.

A :class:`Node` is a named participant attached to a
:class:`~repro.sim.network.Network`.  It provides:

* **message dispatch** — an incoming message of kind ``"foo"`` invokes the
  method ``on_foo(message)``; if the handler returns a generator it is
  spawned as a kernel process (so handlers can perform multi-round
  protocol work, e.g. an OQS node validating a cache miss);
* **request/response RPC** — :meth:`call` sends a message and returns a
  future resolved by the matching reply (or failed by
  :class:`RpcTimeout`), the primitive on which QRPC is built;
* **fail-stop crashes** — :meth:`crash` silences the node (incoming
  messages and timer callbacks are dropped, sends are suppressed);
  :meth:`recover` brings it back and invokes the ``on_recover`` hook;
* **gray failures** — :meth:`set_slow` makes the node *slow* rather than
  dead: every incoming message is processed only after an extra local
  delay, modelling an overloaded or GC-pausing process that peers cannot
  distinguish from a lossy link;
* **safe timers** — :meth:`after` schedules callbacks that are
  automatically suppressed while the node is crashed.

Nodes never share memory: all inter-node interaction goes through the
network, as required to make partition and crash experiments meaningful.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Optional, Tuple

from .clock import DriftingClock, PerfectClock
from .kernel import Future, Simulator, Timer
from .messages import Message
from .network import Network

__all__ = ["RpcTimeout", "NodeCrashed", "Node"]


class RpcTimeout(Exception):
    """An RPC issued with :meth:`Node.call` exceeded its timeout."""

    def __init__(self, src: str, dst: str, kind: str, timeout: float):
        super().__init__(f"rpc {kind} {src}->{dst} timed out after {timeout} ms")
        self.src = src
        self.dst = dst
        self.kind = kind
        self.timeout = timeout


class NodeCrashed(Exception):
    """Raised when local work is attempted on a crashed node."""


class Node:
    """A simulated fail-stop server or client process.

    Parameters
    ----------
    sim, network:
        Kernel and network this node lives on; the node registers itself
        with the network.
    node_id:
        Unique routable name.
    clock:
        Local real-time clock; defaults to a perfect (drift-free) clock.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        clock: Optional[DriftingClock] = None,
    ) -> None:
        self.sim = sim
        self.net = network
        self.node_id = node_id
        self.clock = clock or PerfectClock(sim)
        self.alive = True
        #: msg_id → (reply future, timeout timer or None).  The timer is
        #: cancelled as soon as the reply arrives so resolved RPCs leave
        #: no dead timers behind in the kernel heap (they would otherwise
        #: show up as spurious decision points for the repro.mc explorer).
        self._pending_rpcs: Dict[int, Tuple[Future, Optional[Timer]]] = {}
        self._crash_count = 0
        #: gray failure: extra per-message processing delay (0 = healthy)
        self._slow_ms = 0.0
        network.register(self)

    # -- identity ----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"<{type(self).__name__} {self.node_id} {state}>"

    # -- observability -----------------------------------------------------

    @property
    def obs_tracer(self):
        """The network's span tracer, or ``None`` when observability is
        off (the default) — protocol code guards with one ``is None``."""
        obs = self.net.obs
        return obs.tracer if obs is not None else None

    # -- sending ------------------------------------------------------------

    def send(self, dst: str, kind: str, payload: Optional[Dict[str, Any]] = None,
             reply_to: Optional[int] = None,
             span: Optional[int] = None) -> Optional[Message]:
        """Send a one-way message; returns it, or ``None`` if crashed.

        *span* is an optional causal-span id (see :mod:`repro.obs`)
        stamped onto the message so observability can attribute the send
        and its delivery to the operation that caused it.
        """
        if not self.alive:
            return None
        message = Message.acquire(src=self.node_id, dst=dst, kind=kind,
                                  payload=payload or {}, reply_to=reply_to,
                                  span_id=span)
        self.net.send(message)
        return message

    def reply(self, request: Message, kind: Optional[str] = None,
              payload: Optional[Dict[str, Any]] = None) -> Optional[Message]:
        """Respond to *request*; the reply correlates via ``reply_to``.

        The reply inherits the request's span id, so a full RPC exchange
        attributes to the span of the request's sender.
        """
        return self.send(request.src, kind or (request.kind + "_reply"),
                         payload, reply_to=request.msg_id,
                         span=request.span_id)

    def call(self, dst: str, kind: str, payload: Optional[Dict[str, Any]] = None,
             timeout: Optional[float] = None,
             span: Optional[int] = None) -> Future:
        """Send a request and return a future for the reply message.

        The future resolves with the reply :class:`Message`.  With a
        *timeout*, the future fails with :class:`RpcTimeout` if no reply
        arrives in time (late replies are then ignored).  Replies are
        matched on the request's ``msg_id``, so duplicated replies resolve
        the RPC once and extra copies are dropped.
        """
        future = self.sim.future(name=f"rpc:{kind}->{dst}")
        if not self.alive:
            self.sim.call_soon(future.fail, NodeCrashed(self.node_id))
            return future
        message = self.send(dst, kind, payload, span=span)
        assert message is not None

        timer: Optional[Timer] = None
        if timeout is not None:
            def on_timeout() -> None:
                if self._pending_rpcs.pop(message.msg_id, None) is not None:
                    future.fail(RpcTimeout(self.node_id, dst, kind, timeout))

            on_timeout._mc_node = self.node_id  # POR footprint: node-local
            timer = self.sim.schedule(timeout, on_timeout)
        self._pending_rpcs[message.msg_id] = (future, timer)
        return future

    # -- receiving -----------------------------------------------------------

    def deliver(self, message: Message) -> None:
        """Entry point used by the network; dispatches or correlates."""
        if not self.alive:
            return
        if self._slow_ms > 0.0:
            # Slow mode: the message has arrived, but the process gets to
            # it late.  The crash-epoch guard drops it if the node crashes
            # (or crash-recovers) before the backlog drains — restart
            # loses queued-but-unprocessed input.
            epoch = self._crash_count

            def delayed() -> None:
                if self.alive and self._crash_count == epoch:
                    self._dispatch(message)

            # Never cancelled (the epoch guard suppresses stale ones), so
            # no Timer handle is needed.
            self.sim.call_later(self._slow_ms, delayed)
            return
        self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        if message.reply_to is not None:
            pending = self._pending_rpcs.pop(message.reply_to, None)
            if pending is not None:
                future, timer = pending
                if timer is not None:
                    timer.cancel()
                if not future.done:
                    future.resolve(message)
            # Unmatched replies (late after timeout, or duplicates) are
            # dropped: the protocol state machines never depend on them.
            return
        handler = getattr(self, "on_" + message.kind, None)
        if handler is None:
            raise AttributeError(
                f"{type(self).__name__} {self.node_id} has no handler for "
                f"message kind {message.kind!r}"
            )
        result = handler(message)
        if inspect.isgenerator(result):
            self.spawn(result, name=f"{self.node_id}:{message.kind}")

    # -- timers & processes ---------------------------------------------------

    def after(self, delay: float, fn: Callable, *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after *delay* ms, suppressed while crashed.

        The callback is also suppressed if the node crashed and recovered
        in between (recovery discards the pre-crash schedule, matching a
        process restart).
        """
        epoch = self._crash_count

        def guarded() -> None:
            if self.alive and self._crash_count == epoch:
                fn(*args)

        guarded._mc_node = self.node_id  # POR footprint: node-local
        return self.sim.schedule(delay, guarded)

    def spawn(self, generator, name: str = ""):
        """Spawn a kernel process on behalf of this node."""
        return self.sim.spawn(generator, name=name or self.node_id)

    # -- failure model -----------------------------------------------------

    def set_slow(self, extra_ms: float) -> None:
        """Enter gray-failure slow mode: every subsequently delivered
        message waits *extra_ms* of local processing delay before being
        dispatched.  The node is otherwise fully alive — it is the
        degraded-but-not-dead condition quorum systems struggle with."""
        if extra_ms < 0:
            raise ValueError("extra_ms must be non-negative")
        self._slow_ms = extra_ms

    def clear_slow(self) -> None:
        """Leave slow mode; messages already queued keep their delay."""
        self._slow_ms = 0.0

    @property
    def is_slow(self) -> bool:
        return self._slow_ms > 0.0

    def crash(self) -> None:
        """Fail-stop: drop pending RPCs, ignore messages and timers."""
        if not self.alive:
            return
        self.alive = False
        self._crash_count += 1
        pending, self._pending_rpcs = self._pending_rpcs, {}
        for future, timer in pending.values():
            if timer is not None:
                timer.cancel()
            if not future.done:
                future.fail(NodeCrashed(self.node_id))

    def recover(self) -> None:
        """Restart after a crash; volatile state hooks run in ``on_recover``."""
        if self.alive:
            return
        self.alive = True
        self.on_recover()

    def on_recover(self) -> None:
        """Hook for subclasses to reinitialise volatile state."""

    def check_alive(self) -> None:
        """Raise :class:`NodeCrashed` if the node is down (guard for APIs)."""
        if not self.alive:
            raise NodeCrashed(self.node_id)
