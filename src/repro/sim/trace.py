"""Event tracing for simulations.

A :class:`Tracer` collects a time-ordered log of interesting events
(message sends, protocol decisions, fault injections) so tests can assert
on protocol behaviour ("the second read was a hit — no renewal messages")
and so examples can narrate what happened.

Tracing is opt-in and cheap when disabled: protocol code calls
``tracer.emit(...)`` through a shared no-op default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .kernel import Simulator

__all__ = ["TraceEvent", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass
class TraceEvent:
    """One traced occurrence."""

    time: float
    source: str
    category: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time:10.2f} ms] {self.source:>12s} {self.category:<20s} {extras}"


class Tracer:
    """Collects :class:`TraceEvent` records in simulation order."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.events: List[TraceEvent] = []

    def emit(self, source: str, category: str, **details: Any) -> None:
        """Record an event at the current simulated time."""
        self.events.append(TraceEvent(self.sim.now, source, category, details))

    def filter(self, category: Optional[str] = None, source: Optional[str] = None) -> List[TraceEvent]:
        """Events matching the given category and/or source."""
        out = self.events
        if category is not None:
            out = [e for e in out if e.category == category]
        if source is not None:
            out = [e for e in out if e.source == source]
        return list(out)

    def count(self, category: str) -> int:
        return sum(1 for e in self.events if e.category == category)

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of the trace (for examples/debugging)."""
        events = self.events if limit is None else self.events[:limit]
        return "\n".join(str(e) for e in events)


class NullTracer:
    """A tracer that discards everything; safe shared default."""

    def emit(self, source: str, category: str, **details: Any) -> None:
        pass

    def filter(self, category: Optional[str] = None, source: Optional[str] = None) -> List[TraceEvent]:
        return []

    def count(self, category: str) -> int:
        return 0

    def dump(self, limit: Optional[int] = None) -> str:
        return ""


NULL_TRACER = NullTracer()
