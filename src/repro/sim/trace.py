"""Event tracing for simulations.

A :class:`Tracer` collects a time-ordered log of interesting events
(message sends, protocol decisions, fault injections) so tests can assert
on protocol behaviour ("the second read was a hit — no renewal messages")
and so examples can narrate what happened.

Tracing is opt-in and cheap when disabled: protocol code calls
``tracer.emit(...)`` through a shared no-op default.

Long chaos campaigns can keep tracing on without unbounded growth: a
``max_events`` ring buffer retains only the newest events, and an
``allow`` predicate (or iterable of category names) filters at emission
time.  For *causal* span tracing see :mod:`repro.obs` — this module is
the flat event log.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from .kernel import Simulator

__all__ = ["TraceEvent", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass
class TraceEvent:
    """One traced occurrence."""

    time: float
    source: str
    category: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time:10.2f} ms] {self.source:>12s} {self.category:<20s} {extras}"


#: Either a predicate on (source, category) or a collection of allowed
#: category names.
AllowSpec = Union[Callable[[str, str], bool], Iterable[str], None]


class Tracer:
    """Collects :class:`TraceEvent` records in simulation order.

    Parameters
    ----------
    sim:
        The simulator whose clock timestamps events.
    max_events:
        Optional ring-buffer capacity: once full, each new event evicts
        the oldest.  :attr:`emitted` still counts every accepted event,
        so ``emitted - len(events)`` is the number evicted.
    allow:
        Optional filter applied before recording: a callable
        ``(source, category) -> bool``, or an iterable of category names
        to allow.  Filtered events count in :attr:`dropped`.
    """

    def __init__(self, sim: Simulator, max_events: Optional[int] = None,
                 allow: AllowSpec = None) -> None:
        if max_events is not None and max_events <= 0:
            raise ValueError("max_events must be positive")
        self.sim = sim
        self.events: "deque[TraceEvent]" = deque(maxlen=max_events)
        self.max_events = max_events
        if allow is None or callable(allow):
            self._allow = allow
        else:
            allowed = frozenset(allow)
            self._allow = lambda source, category: category in allowed
        #: events accepted by the filter (including any later evicted)
        self.emitted = 0
        #: events rejected by the ``allow`` filter
        self.dropped = 0

    def emit(self, source: str, category: str, **details: Any) -> None:
        """Record an event at the current simulated time."""
        if self._allow is not None and not self._allow(source, category):
            self.dropped += 1
            return
        self.emitted += 1
        self.events.append(TraceEvent(self.sim.now, source, category, details))

    def filter(self, category: Optional[str] = None, source: Optional[str] = None) -> List[TraceEvent]:
        """Events matching the given category and/or source."""
        out = self.events
        if category is not None:
            out = [e for e in out if e.category == category]
        if source is not None:
            out = [e for e in out if e.source == source]
        return list(out)

    def count(self, category: str) -> int:
        return sum(1 for e in self.events if e.category == category)

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of the trace (for examples/debugging)."""
        events = list(self.events)
        if limit is not None:
            events = events[:limit]
        return "\n".join(str(e) for e in events)


class NullTracer:
    """A tracer that discards everything; safe shared default."""

    def emit(self, source: str, category: str, **details: Any) -> None:
        pass

    def filter(self, category: Optional[str] = None, source: Optional[str] = None) -> List[TraceEvent]:
        return []

    def count(self, category: str) -> int:
        return 0

    def dump(self, limit: Optional[int] = None) -> str:
        return ""


NULL_TRACER = NullTracer()
