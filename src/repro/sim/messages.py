"""Message representation for the simulated network.

Messages are small, immutable-ish records.  The ``kind`` string selects
the handler on the receiving node (``on_<kind>``); ``payload`` carries the
protocol-specific fields.  ``reply_to`` links a response back to the
request that produced it, which is how :meth:`repro.sim.node.Node.call`
implements request/response RPC on top of one-way sends.

Pooling
-------
High-rate workloads allocate one :class:`Message` per send; most are
delivered once and dropped.  :meth:`Message.acquire` takes instances from
a free list instead, and the network returns them via
:meth:`Message.release` after delivery — but *only* when it can prove
(by refcount) that no receiver, tracer, or pending RPC still holds the
object.  Acquire rebinds every field (``payload`` is rebound, never
mutated, so a receiver that kept a payload dict is unaffected) and
assigns a fresh ``msg_id``, so a recycled message is observably a new
one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Message"]

_message_ids = itertools.count(1)

_pool: "List[Message]" = []
_POOL_CAP = 4096


@dataclass
class Message:
    """A single network message.

    Attributes
    ----------
    src, dst:
        Node identifiers (strings) of sender and receiver.
    kind:
        Handler selector, e.g. ``"inval"`` dispatches to ``on_inval``.
    payload:
        Protocol fields.  Treated as read-only by receivers.
    msg_id:
        Unique id assigned at construction; used for RPC correlation and
        duplicate tracking.
    reply_to:
        ``msg_id`` of the request this message responds to, or ``None``.
    send_time:
        Simulated time at which the message entered the network.
    span_id:
        Observability metadata: the id of the causal span (see
        ``repro.obs``) this message belongs to, or ``None`` when tracing
        is off or the sender is untraced.  Replies inherit the request's
        span id so a whole RPC exchange attributes to one span.
    """

    src: str
    dst: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    reply_to: Optional[int] = None
    send_time: float = 0.0
    span_id: Optional[int] = None

    @classmethod
    def acquire(
        cls,
        src: str,
        dst: str,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        reply_to: Optional[int] = None,
        span_id: Optional[int] = None,
    ) -> "Message":
        """A message from the free list (or a fresh one), fully rebound.

        Equivalent to the constructor — including a fresh ``msg_id`` —
        but reuses a released instance when one is available.
        """
        if _pool:
            m = _pool.pop()
            m.src = src
            m.dst = dst
            m.kind = kind
            m.payload = payload if payload is not None else {}
            m.msg_id = next(_message_ids)
            m.reply_to = reply_to
            m.send_time = 0.0
            m.span_id = span_id
            return m
        return cls(src=src, dst=dst, kind=kind,
                   payload=payload if payload is not None else {},
                   reply_to=reply_to, span_id=span_id)

    def release(self) -> None:
        """Return this message to the free list.

        Caller contract: no other reference to the object may remain
        (the network proves this by refcount before calling).  The
        payload reference is dropped so released messages never pin
        protocol state.
        """
        if len(_pool) < _POOL_CAP:
            self.payload = {}
            _pool.append(self)

    def get(self, key: str, default: Any = None) -> Any:
        """Shorthand for ``payload.get``."""
        return self.payload.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def duplicate(self) -> "Message":
        """A copy with a fresh ``msg_id`` (used by duplication injection).

        The copy keeps ``reply_to`` so duplicated replies still correlate.
        """
        return Message(
            src=self.src,
            dst=self.dst,
            kind=self.kind,
            payload=dict(self.payload),
            reply_to=self.reply_to,
            send_time=self.send_time,
            span_id=self.span_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        reply = f" reply_to={self.reply_to}" if self.reply_to is not None else ""
        return f"<Message #{self.msg_id} {self.kind} {self.src}->{self.dst}{reply}>"
