"""Deterministic discrete-event simulation kernel.

This module provides the substrate on which every protocol in this
repository runs: a simulated clock, an event queue, and lightweight
generator-based *processes* that can wait on :class:`Future` objects.

The kernel is deliberately small and fully deterministic:

* every event carries a global sequence number, and events execute in
  strict ``(time, sequence_number)`` order, so two events scheduled for
  the same simulated instant always fire in the order they were
  scheduled;
* all randomness used by a simulation flows through ``Simulator.rng``,
  a single seeded :class:`random.Random`;
* nothing in the kernel reads the wall clock.

Internally there are two lanes.  Real timers (``delay > 0``) live on a
``(time, seq)`` heap.  Zero-delay work — ``call_soon``, future-callback
firing, process resumption — goes on a FIFO *ready deque* (asyncio
style) and skips the heap entirely; entries on the deque are always due
at the current instant, so FIFO order *is* sequence order within the
lane, and the run loop merges the two lanes by comparing sequence
numbers whenever the heap's head is also due now.  The observable order
is therefore identical to a single ``(time, seq)`` queue, at a fraction
of the cost: the hot trampoline path (a generator step scheduling the
next) costs a deque append/popleft instead of a ``Timer`` allocation
plus an ``O(log n)`` heap push/pop.  ``tests/test_sim_kernel.py`` locks
the merged order in with a golden event trace.

The canonical order is a *choice* among many legal ones: two events due
at the same instant have no causal order.  Installing a
:class:`ScheduleController` (``sim.controller = ...``) switches the run
loop onto a slower controlled path that exposes exactly those choices to
a schedule-space explorer (:mod:`repro.mc`); with no controller — the
default — the fast path below is untouched.

Processes are written as plain Python generators.  A process *yields*
awaitables to suspend itself::

    def handler(env):
        yield env.sleep(5.0)              # wait 5 simulated ms
        reply = yield rpc_future          # wait for a Future to resolve
        result = yield env.spawn(child()) # wait for a child process

Time units are **milliseconds** throughout the repository, matching the
paper's delay parameters (8 ms LAN, 86 ms client WAN, 80 ms server WAN).
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "SimulationError",
    "ProcessFailure",
    "Future",
    "Process",
    "Timer",
    "ScheduleController",
    "Simulator",
    "all_of",
    "any_of",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class ProcessFailure(SimulationError):
    """Raised when waiting on a process that terminated with an exception."""

    def __init__(self, process: "Process", cause: BaseException):
        super().__init__(f"process {process.name!r} failed: {cause!r}")
        self.process = process
        self.cause = cause


class Future:
    """A one-shot container for a value produced at a later simulated time.

    A future starts *pending* and transitions exactly once to either
    *resolved* (with a value) or *failed* (with an exception).  Processes
    wait on futures by yielding them; plain callbacks can be attached with
    :meth:`add_callback`.
    """

    __slots__ = (
        "_sim", "_done", "_value", "_exception", "_callbacks", "name", "label",
    )

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._done = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []
        self.name = name
        #: ownership label inherited from the event being executed when
        #: the future was created (``Simulator.exec_label``).  ``None``
        #: outside controlled runs; the schedule explorer's
        #: partial-order reduction uses it to attribute sleep wake-ups
        #: and process resumptions to the node whose code created them
        #: (see :mod:`repro.mc.por`).
        self.label = sim.exec_label

    # -- state inspection -------------------------------------------------

    @property
    def done(self) -> bool:
        """True once the future has been resolved or failed."""
        return self._done

    @property
    def failed(self) -> bool:
        """True if the future completed with an exception."""
        return self._done and self._exception is not None

    @property
    def value(self) -> Any:
        """The resolved value.

        Raises the stored exception if the future failed, and
        :class:`SimulationError` if it is still pending.
        """
        if not self._done:
            raise SimulationError(f"future {self.name!r} is still pending")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The stored exception, or ``None``."""
        return self._exception

    # -- completion -------------------------------------------------------

    def resolve(self, value: Any = None) -> None:
        """Complete the future with *value* and fire callbacks."""
        if self._done:
            raise SimulationError(f"future {self.name!r} resolved twice")
        self._done = True
        self._value = value
        self._fire()

    def fail(self, exception: BaseException) -> None:
        """Complete the future with an exception and fire callbacks."""
        if self._done:
            raise SimulationError(f"future {self.name!r} resolved twice")
        self._done = True
        self._exception = exception
        self._fire()

    def try_resolve(self, value: Any = None) -> bool:
        """Resolve if still pending; return whether this call completed it."""
        if self._done:
            return False
        self.resolve(value)
        return True

    def add_callback(self, fn: Callable[["Future"], None]) -> None:
        """Call ``fn(self)`` when the future completes.

        If the future is already complete, the callback is scheduled to run
        at the current simulated time (never synchronously), which keeps
        event ordering deterministic.
        """
        if self._done:
            self._sim.call_soon(fn, self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        if not callbacks:
            return
        # Fast lane: enqueue directly on the ready deque (equivalent to
        # one call_soon per callback, minus the method dispatch).
        args = (self,)
        ready = self._sim._ready
        for fn in callbacks:
            ready.append((None, fn, args))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._done:
            state = "failed" if self._exception is not None else "resolved"
        return f"<Future {self.name!r} {state}>"


class Process(Future):
    """A running generator coroutine.

    A process is itself a :class:`Future` that resolves with the
    generator's return value (or fails with its uncaught exception), so
    processes can wait on each other simply by yielding.
    """

    __slots__ = ("_generator",)

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self._generator = generator
        sim.call_soon(self._step, None, None)

    def _step(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        """Advance the generator by one yield."""
        try:
            if throw_exc is not None:
                yielded = self._generator.throw(throw_exc)
            else:
                yielded = self._generator.send(send_value)
        except StopIteration as stop:
            self.resolve(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into the future
            self.fail(exc)
            return

        if not isinstance(yielded, Future):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {yielded!r}; "
                    "processes may only yield Future/Process objects"
                )
            )
            return
        yielded.add_callback(self._resume)

    def _resume(self, future: Future) -> None:
        if future.failed:
            exc = future.exception
            if isinstance(future, Process) and not isinstance(exc, ProcessFailure):
                exc = ProcessFailure(future, exc)
            self._step(None, exc)
        else:
            self._step(future._value, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'done' if self.done else 'running'}>"


class Timer:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("_cancelled", "when")

    def __init__(self, when: float) -> None:
        self.when = when
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class ScheduleController:
    """Pluggable same-instant scheduling hook — the schedule-space
    explorer's entry point (see :mod:`repro.mc`).

    Installing a controller (``sim.controller = ctl``) switches
    :meth:`Simulator.run` onto a *controlled* loop: whenever more than
    one event is runnable at the current simulated instant — ready-lane
    entries and due heap timers together — the controller picks which
    executes next, so an explorer can permute exactly the orderings the
    canonical ``(time, seq)`` merge fixes arbitrarily.  The
    :class:`~repro.sim.network.Network` additionally consults
    :meth:`message_delay` for every accepted message, letting a
    controller defer individual deliveries — legal behaviour under the
    paper's asynchronous network model, which permits arbitrary message
    delay and reordering, so any safety violation found this way is a
    real protocol bug, not an artifact.

    The base implementation reproduces the canonical order exactly
    (``tests/test_mc_kernel.py`` locks this in); ``repro.mc`` builds
    recording, replaying, and exploring controllers on top of it.
    """

    #: opt-in: controllers that need the slot *contents* (not just its
    #: size) — e.g. to derive per-event footprints for partial-order
    #: reduction — set this True, and the controlled loop consults
    #: :meth:`choose_event_slot` / :meth:`note_executed` instead of the
    #: plain :meth:`choose_event`.  Default False keeps every existing
    #: controller (and its ``choose_event`` signature) working untouched.
    wants_slot = False

    def choose_event(self, n: int) -> int:
        """Index (``0 <= i < n``) of the next event to execute among the
        *n* runnable at this instant, presented in canonical order."""
        return 0

    def choose_event_slot(self, slot: List[tuple]) -> int:
        """Slot-aware variant of :meth:`choose_event`, consulted instead
        when :attr:`wants_slot` is True.  *slot* is the list of
        ``(timer_or_None, fn, args)`` entries runnable at this instant,
        in canonical order; the controller may inspect (but must not
        mutate) it.  The default delegates to :meth:`choose_event`."""
        return self.choose_event(len(slot))

    def note_executed(self, entry: tuple) -> Optional[str]:
        """Called (only when :attr:`wants_slot` is True) immediately
        before each controlled event executes — including singleton
        slots that never reach :meth:`choose_event_slot`.  Returns an
        optional ownership label; the kernel publishes it as
        ``Simulator.exec_label`` for the duration of the event, so
        futures created during execution inherit their owner."""
        return None

    def message_delay(self, message: Any, delay: float) -> float:
        """Delivery delay for *message*; *delay* is the delay-model draw
        (plus link degradation).  Must return a value ``>= 0``."""
        return delay


class Simulator:
    """The event loop: simulated clock plus a deterministic event queue.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator.  Two runs
        with the same seed and the same inputs produce identical traces.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        #: real timers, ordered by ``(time, seq)``
        self._queue: List = []
        #: zero-delay fast lane: FIFO of ``(timer_or_None, fn, args)``
        #: entries, all due at the current instant.  Invariant: whenever
        #: the deque is non-empty, every heap entry is due strictly later
        #: than ``now`` (the run loop drains due timers into the deque
        #: before executing anything at a new instant), so FIFO order is
        #: schedule order and no per-entry sequence number is needed.
        self._ready: deque = deque()
        self._sequence = 0
        self.rng = random.Random(seed)
        self.seed = seed
        self._events_processed = 0
        #: optional :class:`ScheduleController`; ``None`` (the default)
        #: keeps the fast two-lane run loop
        self.controller: Optional[ScheduleController] = None
        #: ownership label of the event currently executing on the
        #: controlled path (set from ``controller.note_executed`` when
        #: the controller opts in via ``wants_slot``); always ``None``
        #: on the fast path.  Freshly created futures snapshot it.
        self.exec_label: Optional[str] = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for budget assertions)."""
        return self._events_processed

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Timer:
        """Run ``fn(*args)`` after *delay* milliseconds; return a Timer.

        Zero-delay events go on the ready deque (no heap traffic) but
        still get a :class:`Timer`, so they stay cancellable up to the
        instant they fire.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        timer = Timer(self._now + delay)
        if delay == 0:
            self._ready.append((timer, fn, args))
        else:
            self._sequence += 1
            heapq.heappush(self._queue, (timer.when, self._sequence, timer, fn, args))
        return timer

    def call_soon(self, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at the current simulated time.

        The fast lane: no :class:`Timer` is allocated and no handle is
        returned — ``call_soon`` events are not cancellable.  Use
        ``schedule(0.0, ...)`` when cancellation is needed.
        """
        self._ready.append((None, fn, args))

    def sleep(self, delay: float) -> Future:
        """Return a future that resolves after *delay* milliseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        future = Future(self, name=f"sleep({delay})")
        # Sleeps are never cancelled: skip the Timer allocation.
        if delay == 0:
            self._ready.append((None, future.resolve, (None,)))
        else:
            self._sequence += 1
            heapq.heappush(
                self._queue,
                (self._now + delay, self._sequence, None, future.resolve, (None,)),
            )
        return future

    def future(self, name: str = "") -> Future:
        """Create a fresh pending future bound to this simulator."""
        return Future(self, name)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a generator as a process; returns the Process future."""
        return Process(self, generator, name)

    # -- execution --------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Execute events until the queue drains, *until* is reached, or
        *max_events* have run.  Returns the simulated time afterwards.

        When stopped by *until*, the clock is advanced exactly to *until*
        so a subsequent ``run`` continues from there.

        The loop preserves strict global ``(time, seq)`` order across the
        two lanes: the ready deque is always drained before the clock
        advances, and when it does advance, *all* timers due at the new
        instant are moved onto the deque (in heap = schedule order) before
        anything at that instant executes, so later ``call_soon`` work
        lands behind them — exactly the old single-queue interleaving.
        ``events_processed`` is flushed when the loop exits, not per event.
        """
        if self.controller is not None:
            return self._run_controlled(until, max_events)
        processed = 0
        ready = self._ready
        queue = self._queue
        heappop = heapq.heappop
        counted = max_events is not None
        try:
            while True:
                if ready:
                    if until is not None and self._now > until:
                        self._now = until
                        return self._now
                    if counted:
                        while ready:
                            if processed >= max_events:
                                return self._now
                            timer, fn, args = ready.popleft()
                            if timer is not None and timer._cancelled:
                                continue
                            processed += 1
                            fn(*args)
                    else:
                        while ready:
                            timer, fn, args = ready.popleft()
                            if timer is not None and timer._cancelled:
                                continue
                            processed += 1
                            fn(*args)
                if not queue:
                    break
                when = queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    return self._now
                if counted and processed >= max_events:
                    return self._now
                _w, _seq, timer, fn, args = heappop(queue)
                if timer is not None and timer._cancelled:
                    continue
                self._now = when
                # Advance the clock once, then move every other timer due
                # at this instant onto the ready lane (heap order = seq
                # order, and the deque is empty here, so order holds).
                while queue and queue[0][0] == when:
                    entry = heappop(queue)
                    ready.append((entry[2], entry[3], entry[4]))
                processed += 1
                fn(*args)
        finally:
            self._events_processed += processed
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _run_controlled(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> float:
        """The controller path: single-slot scheduling with explicit choice.

        Maintains *slot*, the list of events runnable at the current
        instant in canonical arrival order (heap timers due at the
        instant first, in ``(time, seq)`` order, then ready-lane work in
        FIFO order as it appears), and asks the controller which to run
        whenever there is more than one.  Under the base
        :class:`ScheduleController` this executes the exact canonical
        order; the fast two-lane path in :meth:`run` is untouched when no
        controller is installed.  Cancelled timers are purged from the
        slot before every choice, so ``n`` only ever counts live events.
        """
        processed = 0
        ready = self._ready
        queue = self._queue
        heappop = heapq.heappop
        controller = self.controller
        wants_slot = getattr(controller, "wants_slot", False)
        slot: List[tuple] = []
        try:
            while True:
                if ready:
                    slot.extend(ready)
                    ready.clear()
                if slot:
                    slot[:] = [
                        e for e in slot if e[0] is None or not e[0]._cancelled
                    ]
                if not slot:
                    while queue and queue[0][2] is not None and queue[0][2]._cancelled:
                        heappop(queue)
                    if not queue:
                        break
                    when = queue[0][0]
                    if until is not None and when > until:
                        self._now = until
                        return self._now
                    self._now = when
                    while queue and queue[0][0] == when:
                        _w, _seq, timer, fn, args = heappop(queue)
                        if timer is None or not timer._cancelled:
                            slot.append((timer, fn, args))
                    continue
                if until is not None and self._now > until:
                    self._now = until
                    return self._now
                if max_events is not None and processed >= max_events:
                    return self._now
                if len(slot) > 1:
                    if wants_slot:
                        index = controller.choose_event_slot(slot)
                    else:
                        index = controller.choose_event(len(slot))
                else:
                    index = 0
                if not 0 <= index < len(slot):
                    index = 0
                entry = slot.pop(index)
                processed += 1
                if wants_slot:
                    self.exec_label = controller.note_executed(entry)
                entry[1](*entry[2])
        finally:
            self._events_processed += processed
            if wants_slot:
                self.exec_label = None
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_process(self, generator: Generator, name: str = "",
                    until: Optional[float] = None) -> Any:
        """Spawn *generator*, run the simulation, and return its result.

        Convenience wrapper for tests and examples.  Raises the process's
        exception if it failed, and :class:`SimulationError` if the event
        queue drained before the process finished.
        """
        process = self.spawn(generator, name=name)
        self.run(until=until)
        if not process.done:
            raise SimulationError(
                f"process {process.name!r} did not finish "
                f"(simulation {'reached time limit' if until is not None else 'drained'})"
            )
        return process.value


def all_of(sim: Simulator, futures: Iterable[Future]) -> Future:
    """Return a future resolving with a list of values once *all* complete.

    If any input fails, the combined future fails with the first failure
    (in completion order).
    """
    futures = list(futures)
    result = Future(sim, name="all_of")
    if not futures:
        sim.call_soon(result.resolve, [])
        return result
    remaining = [len(futures)]

    def on_done(_f: Future) -> None:
        if result.done:
            return
        if _f.failed:
            result.fail(_f.exception)
            return
        remaining[0] -= 1
        if remaining[0] == 0:
            result.resolve([f.value for f in futures])

    for f in futures:
        f.add_callback(on_done)
    return result


def any_of(sim: Simulator, futures: Iterable[Future]) -> Future:
    """Return a future resolving with ``(index, value)`` of the first
    completed input.  A failing input fails the combined future if nothing
    has completed yet.
    """
    futures = list(futures)
    if not futures:
        raise SimulationError("any_of requires at least one future")
    result = Future(sim, name="any_of")

    def make_callback(index: int) -> Callable[[Future], None]:
        def on_done(f: Future) -> None:
            if result.done:
                return
            if f.failed:
                result.fail(f.exception)
            else:
                result.resolve((index, f.value))

        return on_done

    for i, f in enumerate(futures):
        f.add_callback(make_callback(i))
    return result
