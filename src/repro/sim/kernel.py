"""Deterministic discrete-event simulation kernel.

This module provides the substrate on which every protocol in this
repository runs: a simulated clock, an event queue, and lightweight
generator-based *processes* that can wait on :class:`Future` objects.

The kernel is deliberately small and fully deterministic:

* every event carries a global sequence number, and events execute in
  strict ``(time, sequence_number)`` order, so two events scheduled for
  the same simulated instant always fire in the order they were
  scheduled;
* all randomness used by a simulation flows through ``Simulator.rng``,
  a single seeded :class:`random.Random`;
* nothing in the kernel reads the wall clock.

Internally there are two lanes.  Zero-delay work — ``call_soon``,
future-callback firing, process resumption — goes on a FIFO *ready
deque* (asyncio style); entries on the deque are always due at the
current instant, so FIFO order *is* sequence order within the lane.

Real timers (``delay > 0``) live on a **hierarchical timing wheel**
keyed by the integer millisecond of their deadline:

* level 0: 1024 slots of 1 ms — the current 1.024 s window;
* level 1: 256 slots of 1.024 s — up to ~4.4 min ahead;
* level 2: 64 slots of ~4.4 min — up to ~4.66 h ahead;
* beyond that, a small overflow heap (far-future deadlines are rare).

Insertion is O(1) (an append to a slot list); the run loop advances a
cursor through level-0 slots and *cascades* coarser slots down as the
cursor enters their span.  Each entry still carries its ``(time, seq)``
pair; a slot is sorted on dispatch (slots are tiny), so the observable
execution order is **identical** to a single global ``(time, seq)``
priority queue — the golden trace in ``tests/test_sim_kernel.py`` locks
this in byte-for-byte.  Two further allocation-rate optimisations ride
on the wheel:

* **batched scheduling** (:meth:`Simulator.schedule_many`,
  :meth:`Simulator.schedule_each`): a batch of N deadlines is staged as
  one record and only expanded into wheel entries when the cursor
  approaches its earliest deadline; entries cancelled before expansion
  never materialise at all;
* **free-list pooling**: :class:`Timer` handles whose callers no longer
  hold a reference (checked via the CPython refcount) are recycled at
  dispatch, cascade, expansion and compaction time instead of being
  garbage; cancellation tombstones past a threshold trigger a
  compaction sweep so cancel-heavy workloads (lease renewal keepers)
  keep the pending set bounded.

The canonical order is a *choice* among many legal ones: two events due
at the same instant have no causal order.  Installing a
:class:`ScheduleController` (``sim.controller = ...``) switches the run
loop onto a slower controlled path that exposes exactly those choices to
a schedule-space explorer (:mod:`repro.mc`); with no controller — the
default — the fast path below is untouched.

Processes are written as plain Python generators.  A process *yields*
awaitables to suspend itself::

    def handler(env):
        yield env.sleep(5.0)              # wait 5 simulated ms
        reply = yield rpc_future          # wait for a Future to resolve
        result = yield env.spawn(child()) # wait for a child process

Time units are **milliseconds** throughout the repository, matching the
paper's delay parameters (8 ms LAN, 86 ms client WAN, 80 ms server WAN).
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Any, Callable, Generator, Iterable, Iterator, List, Optional, Sequence, Tuple

try:  # CPython: refcount probe gates Timer recycling
    from sys import getrefcount
except ImportError:  # pragma: no cover - non-refcounted runtimes: no pooling
    def getrefcount(obj: Any) -> int:  # type: ignore[misc]
        return 1 << 30

__all__ = [
    "SimulationError",
    "ProcessFailure",
    "Future",
    "Process",
    "Timer",
    "ScheduleController",
    "Simulator",
    "all_of",
    "any_of",
]

# -- timing-wheel geometry -----------------------------------------------------
#
# Level 0 is indexed by the integer millisecond directly (1 ms / slot);
# levels 1 and 2 are indexed by progressively coarser bit slices.  All
# sizes are powers of two so slot indexing is a shift and a mask.
_L0_BITS = 10                      # 1024 slots of 1 ms
_L0_SLOTS = 1 << _L0_BITS
_L0_MASK = _L0_SLOTS - 1
_L1_BITS = 8                       # 256 slots of 1.024 s
_L1_SLOTS = 1 << _L1_BITS
_L1_MASK = _L1_SLOTS - 1
_L1_SPAN = 1 << (_L0_BITS + _L1_BITS)          # 262144 ms ≈ 4.4 min
_L2_BITS = 6                       # 64 slots of ~4.4 min
_L2_SLOTS = 1 << _L2_BITS
_L2_MASK = _L2_SLOTS - 1
_L2_SHIFT = _L0_BITS + _L1_BITS
_WHEEL_SPAN = 1 << (_L0_BITS + _L1_BITS + _L2_BITS)  # ≈ 4.66 h

#: recycled Timer handles kept per simulator (beyond this they are
#: simply garbage-collected; the cap bounds worst-case retained memory)
_TIMER_POOL_CAP = 8192

#: compaction trigger: at least this many tombstones, *and* tombstones
#: outnumbering live entries (see Simulator._note_cancel)
_COMPACT_MIN_TOMBSTONES = 512


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class ProcessFailure(SimulationError):
    """Raised when waiting on a process that terminated with an exception."""

    def __init__(self, process: "Process", cause: BaseException):
        super().__init__(f"process {process.name!r} failed: {cause!r}")
        self.process = process
        self.cause = cause


class Future:
    """A one-shot container for a value produced at a later simulated time.

    A future starts *pending* and transitions exactly once to either
    *resolved* (with a value) or *failed* (with an exception).  Processes
    wait on futures by yielding them; plain callbacks can be attached with
    :meth:`add_callback`.
    """

    __slots__ = (
        "_sim", "_done", "_value", "_exception", "_callbacks", "name", "label",
    )

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._done = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []
        self.name = name
        #: ownership label inherited from the event being executed when
        #: the future was created (``Simulator.exec_label``).  ``None``
        #: outside controlled runs; the schedule explorer's
        #: partial-order reduction uses it to attribute sleep wake-ups
        #: and process resumptions to the node whose code created them
        #: (see :mod:`repro.mc.por`).
        self.label = sim.exec_label

    # -- state inspection -------------------------------------------------

    @property
    def done(self) -> bool:
        """True once the future has been resolved or failed."""
        return self._done

    @property
    def failed(self) -> bool:
        """True if the future completed with an exception."""
        return self._done and self._exception is not None

    @property
    def value(self) -> Any:
        """The resolved value.

        Raises the stored exception if the future failed, and
        :class:`SimulationError` if it is still pending.
        """
        if not self._done:
            raise SimulationError(f"future {self.name!r} is still pending")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The stored exception, or ``None``."""
        return self._exception

    # -- completion -------------------------------------------------------

    def resolve(self, value: Any = None) -> None:
        """Complete the future with *value* and fire callbacks."""
        if self._done:
            raise SimulationError(f"future {self.name!r} resolved twice")
        self._done = True
        self._value = value
        self._fire()

    def fail(self, exception: BaseException) -> None:
        """Complete the future with an exception and fire callbacks."""
        if self._done:
            raise SimulationError(f"future {self.name!r} resolved twice")
        self._done = True
        self._exception = exception
        self._fire()

    def try_resolve(self, value: Any = None) -> bool:
        """Resolve if still pending; return whether this call completed it."""
        if self._done:
            return False
        self.resolve(value)
        return True

    def add_callback(self, fn: Callable[["Future"], None]) -> None:
        """Call ``fn(self)`` when the future completes.

        If the future is already complete, the callback is scheduled to run
        at the current simulated time (never synchronously), which keeps
        event ordering deterministic.
        """
        if self._done:
            self._sim.call_soon(fn, self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        if not callbacks:
            return
        # Fast lane: enqueue directly on the ready deque (equivalent to
        # one call_soon per callback, minus the method dispatch).
        args = (self,)
        ready = self._sim._ready
        for fn in callbacks:
            ready.append((None, fn, args))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._done:
            state = "failed" if self._exception is not None else "resolved"
        return f"<Future {self.name!r} {state}>"


class Process(Future):
    """A running generator coroutine.

    A process is itself a :class:`Future` that resolves with the
    generator's return value (or fails with its uncaught exception), so
    processes can wait on each other simply by yielding.
    """

    __slots__ = ("_generator",)

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self._generator = generator
        sim.call_soon(self._step, None, None)

    def _step(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        """Advance the generator by one yield."""
        try:
            if throw_exc is not None:
                yielded = self._generator.throw(throw_exc)
            else:
                yielded = self._generator.send(send_value)
        except StopIteration as stop:
            self.resolve(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into the future
            self.fail(exc)
            return

        if not isinstance(yielded, Future):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {yielded!r}; "
                    "processes may only yield Future/Process objects"
                )
            )
            return
        yielded.add_callback(self._resume)

    def _resume(self, future: Future) -> None:
        if future.failed:
            exc = future.exception
            if isinstance(future, Process) and not isinstance(exc, ProcessFailure):
                exc = ProcessFailure(future, exc)
            self._step(None, exc)
        else:
            self._step(future._value, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'done' if self.done else 'running'}>"


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    Wheel-resident timers carry a back-reference to their simulator so
    cancellation can maintain the tombstone count that drives compaction
    (see :meth:`Simulator._note_cancel`); ready-lane (zero-delay) timers
    drain within the current instant and are not tracked.
    """

    __slots__ = ("_cancelled", "when", "_sim")

    def __init__(self, when: float, sim: Optional["Simulator"] = None) -> None:
        self.when = when
        self._cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if not self._cancelled:
            self._cancelled = True
            sim = self._sim
            if sim is not None:
                # Inlined Simulator._note_cancel (hot: every wheel-resident
                # cancellation lands here).
                sim._cancelled_pending = pending = sim._cancelled_pending + 1
                if (pending >= _COMPACT_MIN_TOMBSTONES
                        and pending * 2 > sim._timer_count):
                    sim._compact()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class ScheduleController:
    """Pluggable same-instant scheduling hook — the schedule-space
    explorer's entry point (see :mod:`repro.mc`).

    Installing a controller (``sim.controller = ctl``) switches
    :meth:`Simulator.run` onto a *controlled* loop: whenever more than
    one event is runnable at the current simulated instant — ready-lane
    entries and due wheel timers together — the controller picks which
    executes next, so an explorer can permute exactly the orderings the
    canonical ``(time, seq)`` merge fixes arbitrarily.  The
    :class:`~repro.sim.network.Network` additionally consults
    :meth:`message_delay` for every accepted message, letting a
    controller defer individual deliveries — legal behaviour under the
    paper's asynchronous network model, which permits arbitrary message
    delay and reordering, so any safety violation found this way is a
    real protocol bug, not an artifact.

    The base implementation reproduces the canonical order exactly
    (``tests/test_mc_kernel.py`` locks this in); ``repro.mc`` builds
    recording, replaying, and exploring controllers on top of it.
    """

    #: opt-in: controllers that need the slot *contents* (not just its
    #: size) — e.g. to derive per-event footprints for partial-order
    #: reduction — set this True, and the controlled loop consults
    #: :meth:`choose_event_slot` / :meth:`note_executed` instead of the
    #: plain :meth:`choose_event`.  Default False keeps every existing
    #: controller (and its ``choose_event`` signature) working untouched.
    wants_slot = False

    def choose_event(self, n: int) -> int:
        """Index (``0 <= i < n``) of the next event to execute among the
        *n* runnable at this instant, presented in canonical order."""
        return 0

    def choose_event_slot(self, slot: List[tuple]) -> int:
        """Slot-aware variant of :meth:`choose_event`, consulted instead
        when :attr:`wants_slot` is True.  *slot* is the list of
        ``(timer_or_None, fn, args)`` entries runnable at this instant,
        in canonical order; the controller may inspect (but must not
        mutate) it.  The default delegates to :meth:`choose_event`."""
        return self.choose_event(len(slot))

    def note_executed(self, entry: tuple) -> Optional[str]:
        """Called (only when :attr:`wants_slot` is True) immediately
        before each controlled event executes — including singleton
        slots that never reach :meth:`choose_event_slot`.  Returns an
        optional ownership label; the kernel publishes it as
        ``Simulator.exec_label`` for the duration of the event, so
        futures created during execution inherit their owner."""
        return None

    def message_delay(self, message: Any, delay: float) -> float:
        """Delivery delay for *message*; *delay* is the delay-model draw
        (plus link degradation).  Must return a value ``>= 0``."""
        return delay


class Simulator:
    """The event loop: simulated clock plus a deterministic event queue.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator.  Two runs
        with the same seed and the same inputs produce identical traces.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        #: zero-delay fast lane: FIFO of ``(timer_or_None, fn, args)``
        #: entries, all due at the current instant.  Invariant: whenever
        #: the deque is non-empty, every wheel entry is due strictly
        #: later than ``now`` (the run loop drains due timers into the
        #: deque before executing anything at a new instant), so FIFO
        #: order is schedule order and no per-entry sequence number is
        #: needed.
        self._ready: deque = deque()
        #: hierarchical timing wheel.  Each slot is an unsorted list of
        #: ``(when, seq, timer_or_None, fn, args)`` entries; level-0
        #: slots are sorted on dispatch.  ``_cur`` is the level-0 cursor
        #: (integer ms).  It may sit *ahead* of ``int(now)`` after an
        #: advance jumped to the earliest pending deadline and the run
        #: stopped short (``until``/``max_events``): the span between is
        #: guaranteed empty, and inserts below the cursor clamp into the
        #: cursor's own slot — the entry keeps its true ``when``, so the
        #: per-slot sort restores dispatch order.  The cursor must never
        #: be moved backward: a cross-window jump cascades that window's
        #: level-1 slot into level 0, and rewinding would strand those
        #: entries where :meth:`_advance` (which only consults the
        #: coarser levels) cannot see them.
        self._l0: List[list] = [[] for _ in range(_L0_SLOTS)]
        self._l1: List[list] = [[] for _ in range(_L1_SLOTS)]
        self._l2: List[list] = [[] for _ in range(_L2_SLOTS)]
        self._overflow: List = []          # heap, deadlines beyond the wheel
        self._cur = 0
        #: lazily expanded batches from schedule_many/schedule_each:
        #: a heap of records keyed by the batch's earliest integer
        #: deadline (see _expand for the record layout)
        self._staged: List = []
        self._batch_seq = 0
        #: pending wheel entries (wheel + staged + overflow), including
        #: not-yet-collected tombstones
        self._timer_count = 0
        #: cancelled-but-still-resident entries; drives compaction
        self._cancelled_pending = 0
        self._timer_pool: List[Timer] = []
        self._sequence = 0
        self.rng = random.Random(seed)
        self.seed = seed
        self._events_processed = 0
        #: optional :class:`ScheduleController`; ``None`` (the default)
        #: keeps the fast two-lane run loop
        self.controller: Optional[ScheduleController] = None
        #: ownership label of the event currently executing on the
        #: controlled path (set from ``controller.note_executed`` when
        #: the controller opts in via ``wants_slot``); always ``None``
        #: on the fast path.  Freshly created futures snapshot it.
        self.exec_label: Optional[str] = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for budget assertions)."""
        return self._events_processed

    @property
    def timer_depth(self) -> int:
        """Pending timer-lane entries (wheel + staged batches + overflow),
        including cancellation tombstones not yet collected.  The ready
        lane is not included (see ``len(sim._ready)``)."""
        return self._timer_count

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Timer:
        """Run ``fn(*args)`` after *delay* milliseconds; return a Timer.

        Zero-delay events go on the ready deque (no wheel traffic) but
        still get a :class:`Timer`, so they stay cancellable up to the
        instant they fire.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        when = self._now + delay
        if delay == 0:
            timer = Timer(when)
            self._ready.append((timer, fn, args))
            return timer
        pool = self._timer_pool
        if pool:
            timer = pool.pop()
            timer.when = when
            timer._cancelled = False
            timer._sim = self
        else:
            timer = Timer(when, self)
        self._sequence = seq = self._sequence + 1
        # Inlined _insert (hot path).
        entry = (when, seq, timer, fn, args)
        t = int(when)
        cur = self._cur
        if t < cur:
            t = cur
        if (t | _L0_MASK) == (cur | _L0_MASK):
            self._l0[t & _L0_MASK].append(entry)
        else:
            d = t - cur
            if d < _L1_SPAN:
                self._l1[(t >> _L0_BITS) & _L1_MASK].append(entry)
            elif d < _WHEEL_SPAN:
                self._l2[(t >> _L2_SHIFT) & _L2_MASK].append(entry)
            else:
                heapq.heappush(self._overflow, entry)
        self._timer_count += 1
        return timer

    def call_soon(self, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at the current simulated time.

        The fast lane: no :class:`Timer` is allocated and no handle is
        returned — ``call_soon`` events are not cancellable.  Use
        ``schedule(0.0, ...)`` when cancellation is needed.
        """
        self._ready.append((None, fn, args))

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after *delay* ms without a cancellation handle.

        The timer-lane sibling of :meth:`call_soon`: no :class:`Timer`
        is allocated, so fire-and-forget deadlines (network deliveries,
        one-shot protocol steps) cost one wheel append and nothing else.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if delay == 0:
            self._ready.append((None, fn, args))
            return
        when = self._now + delay
        self._sequence = seq = self._sequence + 1
        # Inlined _insert (hot path: every network delivery).
        entry = (when, seq, None, fn, args)
        t = int(when)
        cur = self._cur
        if t < cur:
            t = cur
        if (t | _L0_MASK) == (cur | _L0_MASK):
            self._l0[t & _L0_MASK].append(entry)
        else:
            d = t - cur
            if d < _L1_SPAN:
                self._l1[(t >> _L0_BITS) & _L1_MASK].append(entry)
            elif d < _WHEEL_SPAN:
                self._l2[(t >> _L2_SHIFT) & _L2_MASK].append(entry)
            else:
                heapq.heappush(self._overflow, entry)
        self._timer_count += 1

    def schedule_many(
        self, delays: Sequence[float], fn: Callable, *args: Any,
        handles: bool = True,
    ) -> Optional[List[Timer]]:
        """Schedule ``fn(*args)`` once per delay in *delays*; one staged
        batch instead of N individual wheel insertions.

        Sequence numbers are assigned in list order, so the observable
        execution order is identical to calling :meth:`schedule` (or,
        with ``handles=False``, :meth:`call_later`) once per delay.  The
        batch is expanded into wheel entries only when the run loop's
        cursor approaches its earliest deadline; with ``handles=True``
        the returned :class:`Timer` list allows cancellation, and timers
        cancelled before expansion never materialise as wheel entries at
        all (drop the returned list once it is no longer needed — the
        kernel recycles unreferenced timers).

        All delays must be positive: batch members land on the wheel,
        never on the ready lane.
        """
        if not delays:
            return [] if handles else None
        now = self._now
        n = len(delays)
        lo = min(delays)
        if lo <= 0:
            raise SimulationError(
                f"schedule_many requires positive delays (got {lo})"
            )
        seq0 = self._sequence + 1
        self._sequence += n
        timers: Optional[List[Timer]] = None
        if handles:
            pool = self._timer_pool
            if pool:
                timers = []
                append = timers.append
                for d in delays:
                    if pool:
                        t = pool.pop()
                        t.when = now + d
                        t._cancelled = False
                        t._sim = self
                    else:
                        t = Timer(now + d, self)
                    append(t)
            else:
                timers = [Timer(now + d, self) for d in delays]
        self._batch_seq += 1
        heapq.heappush(
            self._staged,
            [int(now + lo), self._batch_seq, 0, list(delays), timers,
             fn, args, now, seq0],
        )
        self._timer_count += n
        return timers

    def schedule_each(
        self, delays: Sequence[float], fn: Callable, items: Sequence[Any],
    ) -> None:
        """Batch variant of :meth:`call_later` with one argument per entry:
        ``fn(items[i])`` runs after ``delays[i]`` ms.

        Like :meth:`schedule_many` this stages one record and assigns
        sequence numbers in list order, so execution order matches a loop
        of ``call_later(delays[i], fn, items[i])`` exactly — the batched
        network delivery path relies on that equivalence.  No handles are
        returned; all delays must be positive.
        """
        if len(delays) != len(items):
            raise SimulationError("schedule_each requires len(delays) == len(items)")
        if not delays:
            return
        now = self._now
        lo = min(delays)
        if lo <= 0:
            raise SimulationError(
                f"schedule_each requires positive delays (got {lo})"
            )
        seq0 = self._sequence + 1
        self._sequence += len(delays)
        self._batch_seq += 1
        heapq.heappush(
            self._staged,
            [int(now + lo), self._batch_seq, 2, list(delays), list(items),
             fn, None, now, seq0],
        )
        self._timer_count += len(delays)

    def sleep(self, delay: float) -> Future:
        """Return a future that resolves after *delay* milliseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        future = Future(self, name=f"sleep({delay})")
        # Sleeps are never cancelled: skip the Timer allocation.
        if delay == 0:
            self._ready.append((None, future.resolve, (None,)))
        else:
            self._sequence += 1
            self._insert(
                (self._now + delay, self._sequence, None, future.resolve, (None,))
            )
        return future

    def future(self, name: str = "") -> Future:
        """Create a fresh pending future bound to this simulator."""
        return Future(self, name)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a generator as a process; returns the Process future."""
        return Process(self, generator, name)

    # -- wheel internals --------------------------------------------------

    def _insert(self, entry: tuple) -> None:
        """Place one ``(when, seq, timer, fn, args)`` entry on the wheel."""
        t = int(entry[0])
        cur = self._cur
        if t < cur:
            t = cur
        if (t | _L0_MASK) == (cur | _L0_MASK):
            self._l0[t & _L0_MASK].append(entry)
        else:
            d = t - cur
            if d < _L1_SPAN:
                self._l1[(t >> _L0_BITS) & _L1_MASK].append(entry)
            elif d < _WHEEL_SPAN:
                self._l2[(t >> _L2_SHIFT) & _L2_MASK].append(entry)
            else:
                heapq.heappush(self._overflow, entry)
        self._timer_count += 1

    def _note_cancel(self) -> None:
        """Tombstone bookkeeping for a wheel-resident timer cancellation.

        When tombstones both exceed a floor and outnumber live entries,
        compaction sweeps them out, so the pending set stays bounded by
        ~2x the live timer count even under adversarial cancel/renew
        churn (the renewal-keeper pattern)."""
        self._cancelled_pending = pending = self._cancelled_pending + 1
        if pending >= _COMPACT_MIN_TOMBSTONES and pending * 2 > self._timer_count:
            self._compact()

    def _reclaim(self, timer: Timer) -> None:
        """Recycle *timer* if nothing outside the kernel references it.

        Call with exactly two internal references live (the entry tuple
        or batch list, and the caller's local); with this method's
        parameter binding and ``getrefcount``'s own argument that reads
        4, proving no user code holds the handle."""
        if getrefcount(timer) == 4 and len(self._timer_pool) < _TIMER_POOL_CAP:
            timer._sim = None
            self._timer_pool.append(timer)

    def _expand(self, horizon: Optional[int]) -> None:
        """Materialise staged batches whose earliest deadline is within
        *horizon* (inclusive; ``None`` = all) into wheel entries.

        Entries cancelled while staged are dropped here without ever
        touching a wheel slot — the cheap path that makes
        retransmission-style schedule-then-cancel nearly free."""
        staged = self._staged
        l0, l1, l2 = self._l0, self._l1, self._l2
        pool = self._timer_pool
        cur = self._cur
        win = cur | _L0_MASK
        dead = 0
        while staged and (horizon is None or staged[0][0] <= horizon):
            rec = heapq.heappop(staged)
            kind, delays, objs = rec[2], rec[3], rec[4]
            fn, args, now0, seq = rec[5], rec[6], rec[7], rec[8]
            if kind == 2:
                for i, d in enumerate(delays):
                    when = now0 + d
                    entry = (when, seq + i, None, fn, (objs[i],))
                    t = int(when)
                    if t < cur:
                        t = cur
                    if (t | _L0_MASK) == win:
                        l0[t & _L0_MASK].append(entry)
                    else:
                        d2 = t - cur
                        if d2 < _L1_SPAN:
                            l1[(t >> _L0_BITS) & _L1_MASK].append(entry)
                        elif d2 < _WHEEL_SPAN:
                            l2[(t >> _L2_SHIFT) & _L2_MASK].append(entry)
                        else:
                            heapq.heappush(self._overflow, entry)
            elif objs is None:
                for i, d in enumerate(delays):
                    when = now0 + d
                    entry = (when, seq + i, None, fn, args)
                    t = int(when)
                    if t < cur:
                        t = cur
                    if (t | _L0_MASK) == win:
                        l0[t & _L0_MASK].append(entry)
                    else:
                        d2 = t - cur
                        if d2 < _L1_SPAN:
                            l1[(t >> _L0_BITS) & _L1_MASK].append(entry)
                        elif d2 < _WHEEL_SPAN:
                            l2[(t >> _L2_SHIFT) & _L2_MASK].append(entry)
                        else:
                            heapq.heappush(self._overflow, entry)
            else:
                # Handle-carrying batch: tombstones are dropped here, never
                # touching a wheel slot.  ``objs[i]`` indexing (not ``zip``)
                # keeps the timer's refcount exactly 3 at the probe — the
                # batch list, the local, and getrefcount's argument; zip's
                # cached result tuple would add a fourth, version-fragile
                # reference.
                for i, d in enumerate(delays):
                    timer = objs[i]
                    if timer._cancelled:
                        dead += 1
                        if (getrefcount(timer) == 3
                                and len(pool) < _TIMER_POOL_CAP):
                            timer._sim = None
                            pool.append(timer)
                        continue
                    when = now0 + d
                    entry = (when, seq + i, timer, fn, args)
                    t = int(when)
                    if t < cur:
                        t = cur
                    if (t | _L0_MASK) == win:
                        l0[t & _L0_MASK].append(entry)
                    else:
                        d2 = t - cur
                        if d2 < _L1_SPAN:
                            l1[(t >> _L0_BITS) & _L1_MASK].append(entry)
                        elif d2 < _WHEEL_SPAN:
                            l2[(t >> _L2_SHIFT) & _L2_MASK].append(entry)
                        else:
                            heapq.heappush(self._overflow, entry)
        if dead:
            self._cancelled_pending -= dead
            self._timer_count -= dead

    def _scatter(self, batch: List[tuple]) -> None:
        """Re-distribute cascaded entries relative to the current cursor,
        dropping (and recycling) cancellation tombstones."""
        for entry in batch:
            timer = entry[2]
            if timer is not None and timer._cancelled:
                self._cancelled_pending -= 1
                self._timer_count -= 1
                self._reclaim(timer)
                continue
            self._timer_count -= 1  # _insert re-counts it
            self._insert(entry)

    def _advance(self) -> bool:
        """Move the cursor to the next span with pending work, cascading
        coarser wheel levels down.  Returns False when the timer lane is
        completely empty (the run loop then stops)."""
        cur = self._cur
        overflow = self._overflow
        if overflow:
            # Far-future deadlines re-enter the wheel as soon as the
            # cursor is within a wheel span of them.
            lim = cur + _WHEEL_SPAN
            popped = False
            while overflow and int(overflow[0][0]) < lim:
                entry = heapq.heappop(overflow)
                self._timer_count -= 1
                self._insert(entry)
                popped = True
            if popped:
                # A popped entry may have landed in the *current* level-0
                # window (the cursor was already moved to its deadline by
                # a previous advance), which the occupancy scan below
                # never consults — let the run loop re-scan level 0
                # first; the next advance call sees the rest on the
                # coarser levels.
                return True
        best: Optional[int] = None
        staged = self._staged
        if staged:
            best = staged[0][0]
        base1 = cur & ~(_L1_SPAN - 1)
        l1 = self._l1
        for j in range(_L1_SLOTS):
            if l1[j]:
                occ = base1 | (j << _L0_BITS)
                if occ <= cur:
                    occ += _L1_SPAN
                if best is None or occ < best:
                    best = occ
        base2 = cur & ~(_WHEEL_SPAN - 1)
        l2 = self._l2
        for k in range(_L2_SLOTS):
            if l2[k]:
                occ = base2 | (k << _L2_SHIFT)
                if occ <= cur:
                    occ += _WHEEL_SPAN
                if best is None or occ < best:
                    best = occ
        if overflow:
            occ = int(overflow[0][0])
            if best is None or occ < best:
                best = occ
        if best is None:
            return False
        nxt = (cur | _L0_MASK) + 1
        if best < nxt:
            best = nxt
        self._cur = best
        k = (best >> _L2_SHIFT) & _L2_MASK
        if l2[k]:
            batch = l2[k]
            l2[k] = []
            self._scatter(batch)
        j = (best >> _L0_BITS) & _L1_MASK
        if l1[j]:
            batch = l1[j]
            l1[j] = []
            self._scatter(batch)
        return True

    def _compact(self) -> None:
        """Sweep cancellation tombstones out of every wheel level.

        Staged batches are expanded first (their tombstones are dropped
        during expansion), then each slot and the overflow heap are
        filtered in place; unreferenced Timer handles go back to the
        free list."""
        self._expand(None)
        dropped = 0
        pool = self._timer_pool
        for level in (self._l0, self._l1, self._l2):
            for idx in range(len(level)):
                slot = level[idx]
                if not slot:
                    continue
                keep = []
                ka = keep.append
                for entry in slot:
                    timer = entry[2]
                    if timer is not None and timer._cancelled:
                        dropped += 1
                        # Inlined _reclaim: the slot's entry tuple, the
                        # local, and getrefcount's argument make 3.
                        if (getrefcount(timer) == 3
                                and len(pool) < _TIMER_POOL_CAP):
                            timer._sim = None
                            pool.append(timer)
                    else:
                        ka(entry)
                if len(keep) != len(slot):
                    level[idx] = keep
        if self._overflow:
            keep = []
            for entry in self._overflow:
                timer = entry[2]
                if timer is not None and timer._cancelled:
                    dropped += 1
                    self._reclaim(timer)
                else:
                    keep.append(entry)
            heapq.heapify(keep)
            self._overflow = keep
        self._timer_count -= dropped
        self._cancelled_pending = 0

    def iter_pending(self) -> Iterator[Tuple[Optional[Timer], Callable, tuple]]:
        """Iterate live pending callbacks as ``(timer, fn, args)`` triples.

        Covers both lanes — the ready deque, every wheel level, the
        overflow heap, and not-yet-expanded staged batches — in no
        particular order.  Cancelled entries are skipped.  Introspection
        only (liveness oracles, debugging); mutating the kernel while
        iterating is undefined.
        """
        for timer, fn, args in self._ready:
            if timer is not None and timer._cancelled:
                continue
            yield (timer, fn, args)
        for level in (self._l0, self._l1, self._l2):
            for slot in level:
                for entry in slot:
                    timer = entry[2]
                    if timer is not None and timer._cancelled:
                        continue
                    yield (timer, entry[3], entry[4])
        for entry in self._overflow:
            timer = entry[2]
            if timer is not None and timer._cancelled:
                continue
            yield (timer, entry[3], entry[4])
        for rec in self._staged:
            kind, delays, objs, fn, args = rec[2], rec[3], rec[4], rec[5], rec[6]
            if kind == 2:
                for item in objs:
                    yield (None, fn, (item,))
            elif objs is None:
                for _ in delays:
                    yield (None, fn, args)
            else:
                for timer in objs:
                    if timer._cancelled:
                        continue
                    yield (timer, fn, args)

    # -- execution --------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Execute events until the queue drains, *until* is reached, or
        *max_events* have run.  Returns the simulated time afterwards.

        When stopped by *until*, the clock is advanced exactly to *until*
        so a subsequent ``run`` continues from there.

        The loop preserves strict global ``(time, seq)`` order across the
        two lanes: the ready deque is always drained before the clock
        advances, and when it does advance, *all* timers due at the new
        instant are moved onto the deque (in ``(time, seq)`` order)
        before anything at that instant executes, so later ``call_soon``
        work lands behind them — exactly the old single-queue
        interleaving.  ``events_processed`` is flushed when the loop
        exits, not per event.
        """
        if self.controller is not None:
            return self._run_controlled(until, max_events)
        processed = 0
        ready = self._ready
        l0 = self._l0
        staged = self._staged
        pool = self._timer_pool
        counted = max_events is not None
        try:
            while True:
                if ready:
                    if until is not None and self._now > until:
                        self._now = until
                        return self._now
                    if counted:
                        while ready:
                            if processed >= max_events:
                                return self._now
                            timer, fn, args = ready.popleft()
                            if timer is not None and timer._cancelled:
                                continue
                            processed += 1
                            fn(*args)
                    else:
                        while ready:
                            timer, fn, args = ready.popleft()
                            if timer is not None and timer._cancelled:
                                continue
                            processed += 1
                            fn(*args)
                # -- timer lane: walk the wheel to the next pending slot
                if not self._timer_count:
                    break
                cur = self._cur
                base = cur & ~_L0_MASK
                if staged and staged[0][0] <= base | _L0_MASK:
                    self._expand(base | _L0_MASK)
                s = cur - base
                while s < _L0_SLOTS and not l0[s]:
                    s += 1
                if s == _L0_SLOTS:
                    if not self._advance():
                        break
                    continue
                s_abs = base + s
                self._cur = s_abs
                slot = l0[s]
                n = len(slot)
                if n > 1:
                    slot.sort()
                if until is not None and slot[0][0] > until:
                    self._now = until
                    return self._now
                # Dispatch the whole slot inline.  Between entries only a
                # cheap emptiness probe is needed: work scheduled *during*
                # an entry's execution can only precede the slot's
                # remaining entries by landing on the ready deque, in this
                # very slot (inserts below the cursor clamp here), or as a
                # staged batch due in it — anything later can wait.  When
                # the probe fires, the unexecuted suffix is pushed back and
                # the outer loop re-sorts, exactly reproducing the global
                # ``(time, seq)`` merge.
                l0[s] = []
                self._timer_count -= n
                # ``until`` can only cut inside this slot if it lies before
                # the slot's end; otherwise skip the per-entry compare.
                guard = until is not None and until < s_abs + 1
                i = 0
                while i < n:
                    entry = slot[i]
                    when = entry[0]
                    if guard and when > until:
                        self._now = until
                        rest = slot[i:]
                        self._timer_count += n - i
                        if l0[s]:
                            rest.extend(l0[s])
                        l0[s] = rest
                        return self._now
                    if counted and processed >= max_events:
                        rest = slot[i:]
                        self._timer_count += n - i
                        if l0[s]:
                            rest.extend(l0[s])
                        l0[s] = rest
                        return self._now
                    timer = entry[2]
                    i += 1
                    if timer is not None and timer._cancelled:
                        self._cancelled_pending -= 1
                        if (getrefcount(timer) == 3
                                and len(pool) < _TIMER_POOL_CAP):
                            timer._sim = None
                            pool.append(timer)
                        continue
                    if i < n and slot[i][0] == when:
                        # Same-instant group: move the rest of the instant
                        # to the ready lane (already in seq order) so later
                        # call_soon work lands behind it.
                        k = i + 1
                        while k < n and slot[k][0] == when:
                            k += 1
                        for j in range(i, k):
                            later = slot[j]
                            t2 = later[2]
                            if t2 is not None:
                                # leaving the wheel: tombstone accounting is
                                # the ready lane's (purge-on-pop) from here
                                t2._sim = None
                                if t2._cancelled:
                                    self._cancelled_pending -= 1
                            ready.append((t2, later[3], later[4]))
                        i = k
                    self._now = when
                    processed += 1
                    entry[3](*entry[4])
                    if timer is not None:
                        timer._sim = None
                        if (not timer._cancelled
                                and getrefcount(timer) == 3
                                and len(pool) < _TIMER_POOL_CAP):
                            pool.append(timer)
                    if ready or l0[s] or (staged and staged[0][0] <= s_abs):
                        if i < n:
                            rest = slot[i:]
                            self._timer_count += n - i
                            if l0[s]:
                                rest.extend(l0[s])
                            l0[s] = rest
                        break
        finally:
            self._events_processed += processed
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _take_instant(self, until: Optional[float]):
        """Controlled-path helper: remove and return the next same-instant
        group of live timer entries as ``(when, [(timer, fn, args), ...])``.

        Returns ``None`` when the timer lane is empty and ``"until"``
        when the next live instant lies beyond *until*.  Staged batches
        are expanded up front so the controller sees every same-instant
        wheel entry in its slot.
        """
        self._expand(None)
        l0 = self._l0
        while True:
            cur = self._cur
            base = cur & ~_L0_MASK
            s = cur - base
            while s < _L0_SLOTS and not l0[s]:
                s += 1
            if s == _L0_SLOTS:
                if not self._advance():
                    return None
                continue
            self._cur = base + s
            slot = l0[s]
            live = []
            dropped = 0
            for entry in slot:
                timer = entry[2]
                if timer is not None and timer._cancelled:
                    self._cancelled_pending -= 1
                    dropped += 1
                    self._reclaim(timer)
                else:
                    live.append(entry)
            self._timer_count -= dropped
            if not live:
                l0[s] = []
                continue
            live.sort()
            when = live[0][0]
            if until is not None and when > until:
                l0[s] = live
                return "until"
            k = 1
            n = len(live)
            while k < n and live[k][0] == when:
                k += 1
            l0[s] = live[k:]
            self._timer_count -= k
            group = []
            for entry in live[:k]:
                timer = entry[2]
                if timer is not None:
                    timer._sim = None
                group.append((timer, entry[3], entry[4]))
            return (when, group)

    def _run_controlled(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> float:
        """The controller path: single-slot scheduling with explicit choice.

        Maintains *slot*, the list of events runnable at the current
        instant in canonical arrival order (wheel timers due at the
        instant first, in ``(time, seq)`` order, then ready-lane work in
        FIFO order as it appears), and asks the controller which to run
        whenever there is more than one.  Under the base
        :class:`ScheduleController` this executes the exact canonical
        order; the fast two-lane path in :meth:`run` is untouched when no
        controller is installed.  Cancelled timers are purged from the
        slot before every choice, so ``n`` only ever counts live events.
        """
        processed = 0
        ready = self._ready
        controller = self.controller
        wants_slot = getattr(controller, "wants_slot", False)
        slot: List[tuple] = []
        try:
            while True:
                if ready:
                    slot.extend(ready)
                    ready.clear()
                if slot:
                    slot[:] = [
                        e for e in slot if e[0] is None or not e[0]._cancelled
                    ]
                if not slot:
                    taken = self._take_instant(until)
                    if taken is None:
                        break
                    if taken == "until":
                        self._now = until
                        return self._now
                    self._now = taken[0]
                    slot.extend(taken[1])
                    continue
                if until is not None and self._now > until:
                    self._now = until
                    return self._now
                if max_events is not None and processed >= max_events:
                    return self._now
                if len(slot) > 1:
                    if wants_slot:
                        index = controller.choose_event_slot(slot)
                    else:
                        index = controller.choose_event(len(slot))
                else:
                    index = 0
                if not 0 <= index < len(slot):
                    index = 0
                entry = slot.pop(index)
                processed += 1
                if wants_slot:
                    self.exec_label = controller.note_executed(entry)
                entry[1](*entry[2])
        finally:
            self._events_processed += processed
            if wants_slot:
                self.exec_label = None
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_process(self, generator: Generator, name: str = "",
                    until: Optional[float] = None) -> Any:
        """Spawn *generator*, run the simulation, and return its result.

        Convenience wrapper for tests and examples.  Raises the process's
        exception if it failed, and :class:`SimulationError` if the event
        queue drained before the process finished.
        """
        process = self.spawn(generator, name=name)
        self.run(until=until)
        if not process.done:
            raise SimulationError(
                f"process {process.name!r} did not finish "
                f"(simulation {'reached time limit' if until is not None else 'drained'})"
            )
        return process.value


def all_of(sim: Simulator, futures: Iterable[Future]) -> Future:
    """Return a future resolving with a list of values once *all* complete.

    If any input fails, the combined future fails with the first failure
    (in completion order).
    """
    futures = list(futures)
    result = Future(sim, name="all_of")
    if not futures:
        sim.call_soon(result.resolve, [])
        return result
    remaining = [len(futures)]

    def on_done(_f: Future) -> None:
        if result.done:
            return
        if _f.failed:
            result.fail(_f.exception)
            return
        remaining[0] -= 1
        if remaining[0] == 0:
            result.resolve([f.value for f in futures])

    for f in futures:
        f.add_callback(on_done)
    return result


def any_of(sim: Simulator, futures: Iterable[Future]) -> Future:
    """Return a future resolving with ``(index, value)`` of the first
    completed input.  A failing input fails the combined future if nothing
    has completed yet.
    """
    futures = list(futures)
    if not futures:
        raise SimulationError("any_of requires at least one future")
    result = Future(sim, name="any_of")

    def make_callback(index: int) -> Callable[[Future], None]:
        def on_done(f: Future) -> None:
            if result.done:
                return
            if f.failed:
                result.fail(f.exception)
            else:
                result.resolve((index, f.value))

        return on_done

    for i, f in enumerate(futures):
        f.add_callback(make_callback(i))
    return result
