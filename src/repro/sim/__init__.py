"""Deterministic discrete-event simulation substrate.

This subpackage replaces the paper's physical testbed: a seeded event
loop (:mod:`~repro.sim.kernel`), a wide-area network model with delay
matrices and fault injection (:mod:`~repro.sim.network`), fail-stop nodes
with drifting clocks (:mod:`~repro.sim.node`, :mod:`~repro.sim.clock`),
failure schedules (:mod:`~repro.sim.failures`), and tracing
(:mod:`~repro.sim.trace`).
"""

from .clock import DriftingClock, PerfectClock
from .failures import BernoulliOutages, FailureSchedule, crash_for, partition_for
from .kernel import (
    Future,
    Process,
    ProcessFailure,
    ScheduleController,
    SimulationError,
    Simulator,
    Timer,
    all_of,
    any_of,
)
from .messages import Message
from .network import (
    ConstantDelay,
    DelayModel,
    JitteredDelay,
    MatrixDelay,
    Network,
    NetworkStats,
)
from .node import Node, NodeCrashed, RpcTimeout
from .trace import NULL_TRACER, NullTracer, TraceEvent, Tracer

__all__ = [
    "Simulator",
    "Future",
    "Process",
    "Timer",
    "ScheduleController",
    "SimulationError",
    "ProcessFailure",
    "all_of",
    "any_of",
    "Message",
    "Network",
    "NetworkStats",
    "DelayModel",
    "ConstantDelay",
    "MatrixDelay",
    "JitteredDelay",
    "Node",
    "NodeCrashed",
    "RpcTimeout",
    "DriftingClock",
    "PerfectClock",
    "FailureSchedule",
    "BernoulliOutages",
    "crash_for",
    "partition_for",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
]
