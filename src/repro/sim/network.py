"""Simulated wide-area network.

The network delivers :class:`~repro.sim.messages.Message` objects between
registered nodes with configurable per-pair delays, and can inject the
failure modes the paper's system model allows: message delay, loss,
duplication, and reordering, plus network partitions.  Corrupted messages
are assumed to be detected by checksums and silently dropped, so
corruption is modelled identically to loss.

Delay models
------------
Delays are supplied by a *delay model*: any object with a
``delay(src, dst, rng) -> float`` method.  :class:`ConstantDelay`,
:class:`MatrixDelay`, and :class:`JitteredDelay` cover the configurations
used in the paper's evaluation; ``repro.edge.topology`` builds the
paper's specific LAN/WAN matrix on top of :class:`MatrixDelay`.

Statistics
----------
The network counts every message it accepts, per kind and per (src, dst)
pair; the communication-overhead experiments (Figure 9) read these
counters.  ``snapshot()``/``reset_counters()`` delimit measurement
windows so warm-up traffic can be excluded.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterable, Optional, Set, Tuple

from .kernel import Simulator
from .messages import Message

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "MatrixDelay",
    "JitteredDelay",
    "NetworkStats",
    "Network",
]


class DelayModel:
    """Interface for one-way delay computation (milliseconds)."""

    def delay(self, src: str, dst: str, rng) -> float:
        raise NotImplementedError


class ConstantDelay(DelayModel):
    """The same one-way delay for every pair of nodes."""

    def __init__(self, delay_ms: float) -> None:
        if delay_ms < 0:
            raise ValueError("delay must be non-negative")
        self.delay_ms = delay_ms

    def delay(self, src: str, dst: str, rng) -> float:
        return self.delay_ms


class MatrixDelay(DelayModel):
    """Per-pair delays from an explicit matrix, with a default fallback.

    ``matrix`` maps ``(src, dst)`` to a one-way delay.  Lookups fall back
    to ``(dst, src)`` (symmetric links) and then to ``default_ms``.
    """

    def __init__(self, matrix: Dict[Tuple[str, str], float], default_ms: float = 0.0) -> None:
        self.matrix = dict(matrix)
        self.default_ms = default_ms

    def set(self, src: str, dst: str, delay_ms: float, symmetric: bool = True) -> None:
        """Set the delay for a pair (and its reverse when *symmetric*)."""
        self.matrix[(src, dst)] = delay_ms
        if symmetric:
            self.matrix[(dst, src)] = delay_ms

    def delay(self, src: str, dst: str, rng) -> float:
        if (src, dst) in self.matrix:
            return self.matrix[(src, dst)]
        if (dst, src) in self.matrix:
            return self.matrix[(dst, src)]
        return self.default_ms


class JitteredDelay(DelayModel):
    """Wrap another model, adding uniform jitter in ``[0, jitter_ms]``.

    Jitter makes message *reordering* possible: two messages on the same
    link may be delivered out of send order, which the paper's network
    model explicitly permits.
    """

    def __init__(self, base: DelayModel, jitter_ms: float) -> None:
        if jitter_ms < 0:
            raise ValueError("jitter must be non-negative")
        self.base = base
        self.jitter_ms = jitter_ms

    def delay(self, src: str, dst: str, rng) -> float:
        return self.base.delay(src, dst, rng) + rng.uniform(0.0, self.jitter_ms)


class NetworkStats:
    """Counters for traffic accepted by the network.

    Byte counters are populated when the network has a *size model*
    (any callable ``Message -> int``); without one, only message counts
    are tracked — the paper's Figure 9 accounting.
    """

    def __init__(self) -> None:
        self.total_messages = 0
        self.by_kind: Counter = Counter()
        self.by_pair: Counter = Counter()
        self.total_bytes = 0
        self.bytes_by_kind: Counter = Counter()
        self.dropped = 0
        self.duplicated = 0

    def record(self, message: Message, size: int = 0) -> None:
        self.total_messages += 1
        self.by_kind[message.kind] += 1
        self.by_pair[(message.src, message.dst)] += 1
        if size:
            self.total_bytes += size
            self.bytes_by_kind[message.kind] += size

    def copy(self) -> "NetworkStats":
        out = NetworkStats()
        out.total_messages = self.total_messages
        out.by_kind = Counter(self.by_kind)
        out.by_pair = Counter(self.by_pair)
        out.total_bytes = self.total_bytes
        out.bytes_by_kind = Counter(self.bytes_by_kind)
        out.dropped = self.dropped
        out.duplicated = self.duplicated
        return out

    def diff(self, earlier: "NetworkStats") -> "NetworkStats":
        """Counters accumulated since *earlier* (a prior ``copy()``)."""
        out = NetworkStats()
        out.total_messages = self.total_messages - earlier.total_messages
        out.by_kind = self.by_kind - earlier.by_kind
        out.by_pair = self.by_pair - earlier.by_pair
        out.total_bytes = self.total_bytes - earlier.total_bytes
        out.bytes_by_kind = self.bytes_by_kind - earlier.bytes_by_kind
        out.dropped = self.dropped - earlier.dropped
        out.duplicated = self.duplicated - earlier.duplicated
        return out


class Network:
    """Routes messages between nodes over a delay model with fault injection.

    Parameters
    ----------
    sim:
        The simulation kernel used for scheduling deliveries.
    delay_model:
        One-way delay source; defaults to zero delay.
    loss_probability:
        Independent probability that any message is silently dropped.
    duplicate_probability:
        Independent probability that a message is delivered twice (the
        second copy takes an independently drawn delay).
    """

    def __init__(
        self,
        sim: Simulator,
        delay_model: Optional[DelayModel] = None,
        loss_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        size_model: Optional[Callable[[Message], int]] = None,
    ) -> None:
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss_probability must be in [0, 1]")
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ValueError("duplicate_probability must be in [0, 1]")
        self.sim = sim
        self.delay_model = delay_model or ConstantDelay(0.0)
        self.loss_probability = loss_probability
        self.duplicate_probability = duplicate_probability
        #: optional Message -> bytes estimator for byte accounting
        self.size_model = size_model
        self.stats = NetworkStats()
        self._nodes: Dict[str, "NodeLike"] = {}
        self._blocked_pairs: Set[Tuple[str, str]] = set()
        self._message_taps: list = []

    # -- membership -------------------------------------------------------

    def register(self, node: "NodeLike") -> None:
        """Attach a node; its ``node_id`` becomes routable."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node

    def node(self, node_id: str) -> "NodeLike":
        return self._nodes[node_id]

    @property
    def node_ids(self) -> Iterable[str]:
        return self._nodes.keys()

    # -- partitions -------------------------------------------------------

    def block(self, a: str, b: str, symmetric: bool = True) -> None:
        """Drop all traffic from *a* to *b* (and back when symmetric)."""
        self._blocked_pairs.add((a, b))
        if symmetric:
            self._blocked_pairs.add((b, a))

    def unblock(self, a: str, b: str, symmetric: bool = True) -> None:
        """Remove a block installed by :meth:`block` (idempotent)."""
        self._blocked_pairs.discard((a, b))
        if symmetric:
            self._blocked_pairs.discard((b, a))

    def partition(self, *groups: Iterable[str]) -> None:
        """Partition the network into the given groups.

        Traffic between nodes in different groups is dropped; traffic
        within a group flows normally.  Nodes not named in any group are
        unaffected.  Overwrites any previous partition state between the
        named nodes.
        """
        group_sets = [set(g) for g in groups]
        for i, ga in enumerate(group_sets):
            for gb in group_sets[i + 1:]:
                for a in ga:
                    for b in gb:
                        self.block(a, b)

    def heal(self) -> None:
        """Remove every partition/block."""
        self._blocked_pairs.clear()

    def is_blocked(self, src: str, dst: str) -> bool:
        return (src, dst) in self._blocked_pairs

    # -- observation ------------------------------------------------------

    def add_tap(self, tap: Callable[[Message], None]) -> None:
        """Register a callback observing every accepted message (tracing)."""
        self._message_taps.append(tap)

    def snapshot(self) -> NetworkStats:
        """A copy of the counters, for window-based measurement."""
        return self.stats.copy()

    def reset_counters(self) -> None:
        self.stats = NetworkStats()

    # -- transmission -----------------------------------------------------

    def send(self, message: Message) -> None:
        """Accept a message for delivery (or inject a fault instead)."""
        if message.dst not in self._nodes:
            raise ValueError(f"unknown destination node {message.dst!r}")
        message.send_time = self.sim.now
        size = self.size_model(message) if self.size_model is not None else 0
        self.stats.record(message, size)
        for tap in self._message_taps:
            tap(message)

        if self.is_blocked(message.src, message.dst):
            self.stats.dropped += 1
            return
        if self.loss_probability and self.sim.rng.random() < self.loss_probability:
            self.stats.dropped += 1
            return

        self._schedule_delivery(message)
        if self.duplicate_probability and self.sim.rng.random() < self.duplicate_probability:
            self.stats.duplicated += 1
            self._schedule_delivery(message.duplicate())

    def _schedule_delivery(self, message: Message) -> None:
        delay = self.delay_model.delay(message.src, message.dst, self.sim.rng)
        self.sim.schedule(delay, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None:  # pragma: no cover - node removal is not modelled
            return
        # Partitions that formed while the message was in flight also drop
        # it: a partition severs the physical path.
        if self.is_blocked(message.src, message.dst):
            self.stats.dropped += 1
            return
        node.deliver(message)


class NodeLike:
    """Structural interface the network expects (see repro.sim.node)."""

    node_id: str

    def deliver(self, message: Message) -> None:  # pragma: no cover - interface
        raise NotImplementedError
