"""Simulated wide-area network.

The network delivers :class:`~repro.sim.messages.Message` objects between
registered nodes with configurable per-pair delays, and can inject the
failure modes the paper's system model allows: message delay, loss,
duplication, and reordering, plus network partitions.  Corrupted messages
are assumed to be detected by checksums and silently dropped, so
corruption is modelled identically to loss.

Delay models
------------
Delays are supplied by a *delay model*: any object with a
``delay(src, dst, rng) -> float`` method.  :class:`ConstantDelay`,
:class:`MatrixDelay`, and :class:`JitteredDelay` cover the configurations
used in the paper's evaluation; ``repro.edge.topology`` builds the
paper's specific LAN/WAN matrix on top of :class:`MatrixDelay`.

Statistics
----------
The network counts every message it accepts, per kind and per (src, dst)
pair; the communication-overhead experiments (Figure 9) read these
counters.  ``snapshot()``/``reset_counters()`` delimit measurement
windows so warm-up traffic can be excluded.

Fault windows
-------------
Beyond the constructor-level ``loss_probability``/``duplicate_probability``,
the chaos tooling composes *windowed* faults at runtime, each returning a
token that removes exactly that fault:

* :meth:`partition` → token consumed by :meth:`heal`; overlapping
  partitions heal independently (a pair stays blocked while any active
  partition separates it);
* :meth:`degrade_link` → per-link extra delay and/or loss (gray links);
* :meth:`add_loss_window` / :meth:`add_duplication_window` → network-wide
  extra loss/duplication that stacks independently with the base rates.

Determinism
-----------
Loss, duplication, and delivery-delay randomness each draw from a
dedicated RNG stream derived from the simulation seed (never from the
shared ``sim.rng``).  Toggling a fault lane on or off therefore only
affects that lane: a run with ``duplicate_probability=0.0`` is
byte-identical to one where the flag was never set, and surviving
messages in a lossy run keep the delays of the lossless run.  When a
:class:`~repro.sim.kernel.ScheduleController` is installed, it may
additionally rewrite each delivery delay (``message_delay``), which is
how the ``repro.mc`` explorer enumerates delivery orders.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .kernel import Simulator, getrefcount
from .messages import Message

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "MatrixDelay",
    "JitteredDelay",
    "NetworkStats",
    "Network",
]


class DelayModel:
    """Interface for one-way delay computation (milliseconds)."""

    def delay(self, src: str, dst: str, rng) -> float:
        raise NotImplementedError


class ConstantDelay(DelayModel):
    """The same one-way delay for every pair of nodes."""

    def __init__(self, delay_ms: float) -> None:
        if delay_ms < 0:
            raise ValueError("delay must be non-negative")
        self.delay_ms = delay_ms

    def delay(self, src: str, dst: str, rng) -> float:
        return self.delay_ms


class MatrixDelay(DelayModel):
    """Per-pair delays from an explicit matrix, with a default fallback.

    ``matrix`` maps ``(src, dst)`` to a one-way delay.  Lookups fall back
    to ``(dst, src)`` (symmetric links) and then to ``default_ms``.
    """

    def __init__(self, matrix: Dict[Tuple[str, str], float], default_ms: float = 0.0) -> None:
        self.matrix = dict(matrix)
        self.default_ms = default_ms

    def set(self, src: str, dst: str, delay_ms: float, symmetric: bool = True) -> None:
        """Set the delay for a pair (and its reverse when *symmetric*)."""
        self.matrix[(src, dst)] = delay_ms
        if symmetric:
            self.matrix[(dst, src)] = delay_ms

    def delay(self, src: str, dst: str, rng) -> float:
        if (src, dst) in self.matrix:
            return self.matrix[(src, dst)]
        if (dst, src) in self.matrix:
            return self.matrix[(dst, src)]
        return self.default_ms


class JitteredDelay(DelayModel):
    """Wrap another model, adding uniform jitter in ``[0, jitter_ms]``.

    Jitter makes message *reordering* possible: two messages on the same
    link may be delivered out of send order, which the paper's network
    model explicitly permits.
    """

    def __init__(self, base: DelayModel, jitter_ms: float) -> None:
        if jitter_ms < 0:
            raise ValueError("jitter must be non-negative")
        self.base = base
        self.jitter_ms = jitter_ms

    def delay(self, src: str, dst: str, rng) -> float:
        return self.base.delay(src, dst, rng) + rng.uniform(0.0, self.jitter_ms)


class NetworkStats:
    """Counters for traffic accepted by the network.

    Byte counters are populated when the network has a *size model*
    (any callable ``Message -> int``); without one, only message counts
    are tracked — the paper's Figure 9 accounting.
    """

    def __init__(self) -> None:
        self.total_messages = 0
        self.by_kind: Counter = Counter()
        self.by_pair: Counter = Counter()
        self.total_bytes = 0
        self.bytes_by_kind: Counter = Counter()
        self.dropped = 0
        self.duplicated = 0
        #: messages addressed to an id no node registered (counted in
        #: ``dropped`` as well) — chaos schedules may name nodes that a
        #: particular deployment does not instantiate
        self.unknown_destination = 0

    def record(self, message: Message, size: int = 0) -> None:
        self.total_messages += 1
        self.by_kind[message.kind] += 1
        self.by_pair[(message.src, message.dst)] += 1
        if size:
            self.total_bytes += size
            self.bytes_by_kind[message.kind] += size

    def copy(self) -> "NetworkStats":
        out = NetworkStats()
        out.total_messages = self.total_messages
        out.by_kind = Counter(self.by_kind)
        out.by_pair = Counter(self.by_pair)
        out.total_bytes = self.total_bytes
        out.bytes_by_kind = Counter(self.bytes_by_kind)
        out.dropped = self.dropped
        out.duplicated = self.duplicated
        out.unknown_destination = self.unknown_destination
        return out

    def diff(self, earlier: "NetworkStats") -> "NetworkStats":
        """Counters accumulated since *earlier* (a prior ``copy()``)."""
        out = NetworkStats()
        out.total_messages = self.total_messages - earlier.total_messages
        out.by_kind = self.by_kind - earlier.by_kind
        out.by_pair = self.by_pair - earlier.by_pair
        out.total_bytes = self.total_bytes - earlier.total_bytes
        out.bytes_by_kind = self.bytes_by_kind - earlier.bytes_by_kind
        out.dropped = self.dropped - earlier.dropped
        out.duplicated = self.duplicated - earlier.duplicated
        out.unknown_destination = self.unknown_destination - earlier.unknown_destination
        return out


class Network:
    """Routes messages between nodes over a delay model with fault injection.

    Parameters
    ----------
    sim:
        The simulation kernel used for scheduling deliveries.
    delay_model:
        One-way delay source; defaults to zero delay.
    loss_probability:
        Independent probability that any message is silently dropped.
    duplicate_probability:
        Independent probability that a message is delivered twice (the
        second copy takes an independently drawn delay).
    """

    def __init__(
        self,
        sim: Simulator,
        delay_model: Optional[DelayModel] = None,
        loss_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        size_model: Optional[Callable[[Message], int]] = None,
    ) -> None:
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss_probability must be in [0, 1]")
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ValueError("duplicate_probability must be in [0, 1]")
        self.sim = sim
        self.delay_model = delay_model or ConstantDelay(0.0)
        self.loss_probability = loss_probability
        self.duplicate_probability = duplicate_probability
        # Per-purpose RNG streams, derived from the simulation seed (str
        # seeding is hash-salt-free and process-stable).  Loss,
        # duplication, and delivery-delay draws must NOT share one
        # stream: with a shared stream, merely *enabling* a fault lane
        # (a loss window, a nonzero duplicate probability) consumes an
        # extra draw per message and thereby reshuffles every downstream
        # delay — a probabilistic no-op flag becomes a trace-visible
        # perturbation.  With dedicated streams, each lane's draw
        # sequence is a function of the accepted-message sequence alone,
        # so e.g. a lossy run delivers every *surviving* message at
        # exactly the delay the lossless run gave it
        # (tests/test_sim_network.py locks this in).
        seed = getattr(sim, "seed", 0)
        self._delay_rng = random.Random(f"net-delay:{seed}")
        self._loss_rng = random.Random(f"net-loss:{seed}")
        self._dup_rng = random.Random(f"net-dup:{seed}")
        #: optional Message -> bytes estimator for byte accounting
        self.size_model = size_model
        self.stats = NetworkStats()
        self._nodes: Dict[str, "NodeLike"] = {}
        #: manual blocks (idempotent block/unblock API)
        self._blocked_pairs: Set[Tuple[str, str]] = set()
        #: token → the set of pairs that partition blocks; a pair is
        #: blocked while *any* active partition contains it, so
        #: overlapping partition windows heal independently
        self._partitions: Dict[int, Set[Tuple[str, str]]] = {}
        self._partition_counts: Counter = Counter()
        #: token → [(pair, extra_delay_ms, loss_probability)] gray links
        self._link_faults: Dict[int, List[Tuple[Tuple[str, str], float, float]]] = {}
        self._link_delay: Dict[Tuple[str, str], float] = {}
        self._link_loss: Dict[Tuple[str, str], List[float]] = {}
        #: token → extra network-wide loss / duplication probability
        self._loss_windows: Dict[int, float] = {}
        self._dup_windows: Dict[int, float] = {}
        self._next_token = 1
        self._message_taps: list = []
        #: optional observability context (``repro.obs.Observability``);
        #: ``None`` — the default — means fully disabled, and every hook
        #: site below is a single ``is not None`` check.
        self.obs = None

    def _new_token(self) -> int:
        token = self._next_token
        self._next_token += 1
        return token

    # -- membership -------------------------------------------------------

    def register(self, node: "NodeLike") -> None:
        """Attach a node; its ``node_id`` becomes routable."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node

    def node(self, node_id: str) -> "NodeLike":
        return self._nodes[node_id]

    @property
    def node_ids(self) -> Iterable[str]:
        return self._nodes.keys()

    # -- partitions -------------------------------------------------------

    def block(self, a: str, b: str, symmetric: bool = True) -> None:
        """Drop all traffic from *a* to *b* (and back when symmetric)."""
        self._blocked_pairs.add((a, b))
        if symmetric:
            self._blocked_pairs.add((b, a))

    def unblock(self, a: str, b: str, symmetric: bool = True) -> None:
        """Remove a block installed by :meth:`block` (idempotent)."""
        self._blocked_pairs.discard((a, b))
        if symmetric:
            self._blocked_pairs.discard((b, a))

    def partition(self, *groups: Iterable[str]) -> int:
        """Partition the network into the given groups; returns a token.

        Traffic between nodes in different groups is dropped; traffic
        within a group flows normally.  Nodes not named in any group are
        unaffected.  Passing the returned token to :meth:`heal` removes
        exactly this partition's blocks, so overlapping fault windows
        compose: a pair stays severed while *any* active partition
        separates it.
        """
        pairs: Set[Tuple[str, str]] = set()
        group_sets = [set(g) for g in groups]
        for i, ga in enumerate(group_sets):
            for gb in group_sets[i + 1:]:
                for a in ga:
                    for b in gb:
                        pairs.add((a, b))
                        pairs.add((b, a))
        token = self._new_token()
        self._partitions[token] = pairs
        self._partition_counts.update(pairs)
        return token

    def heal(self, token: Optional[int] = None) -> None:
        """Remove partitions/blocks.

        Without a token this is heal-everything: every manual block and
        every active partition disappears.  With a token, only the blocks
        installed by that :meth:`partition` call are removed (idempotent:
        an unknown or already-healed token is a no-op).
        """
        if token is None:
            self._blocked_pairs.clear()
            self._partitions.clear()
            self._partition_counts.clear()
            return
        pairs = self._partitions.pop(token, None)
        if pairs is None:
            return
        self._partition_counts.subtract(pairs)
        # Counter.subtract keeps zero entries; purge them so membership
        # checks and len() stay meaningful.
        for pair in pairs:
            if self._partition_counts[pair] <= 0:
                del self._partition_counts[pair]

    def is_blocked(self, src: str, dst: str) -> bool:
        pair = (src, dst)
        return pair in self._blocked_pairs or pair in self._partition_counts

    # -- gray failures ----------------------------------------------------

    def degrade_link(
        self,
        a: str,
        b: str,
        extra_delay_ms: float = 0.0,
        loss_probability: float = 0.0,
        symmetric: bool = True,
    ) -> int:
        """Degrade the a→b link (and b→a when symmetric): add one-way
        delay and/or independent loss.  Returns a token for
        :meth:`restore_link`.  Degradations stack: concurrent faults on
        the same link add their delays and compound their loss
        probabilities."""
        if extra_delay_ms < 0:
            raise ValueError("extra_delay_ms must be non-negative")
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss_probability must be in [0, 1]")
        pairs = [(a, b)] + ([(b, a)] if symmetric else [])
        entries = []
        for pair in pairs:
            entries.append((pair, extra_delay_ms, loss_probability))
            self._link_delay[pair] = self._link_delay.get(pair, 0.0) + extra_delay_ms
            if loss_probability:
                self._link_loss.setdefault(pair, []).append(loss_probability)
        token = self._new_token()
        self._link_faults[token] = entries
        return token

    def restore_link(self, token: int) -> None:
        """Undo one :meth:`degrade_link` (idempotent on unknown tokens)."""
        entries = self._link_faults.pop(token, None)
        if entries is None:
            return
        for pair, delay, loss in entries:
            remaining = self._link_delay.get(pair, 0.0) - delay
            if remaining > 1e-12:
                self._link_delay[pair] = remaining
            else:
                self._link_delay.pop(pair, None)
            if loss:
                probs = self._link_loss.get(pair, [])
                if loss in probs:
                    probs.remove(loss)
                if not probs:
                    self._link_loss.pop(pair, None)

    def link_extra_delay(self, src: str, dst: str) -> float:
        """Summed gray-failure delay currently afflicting src→dst."""
        return self._link_delay.get((src, dst), 0.0)

    def link_loss_probability(self, src: str, dst: str) -> float:
        """Compound gray-failure loss currently afflicting src→dst."""
        survive = 1.0
        for p in self._link_loss.get((src, dst), ()):
            survive *= 1.0 - p
        return 1.0 - survive

    def add_loss_window(self, probability: float) -> int:
        """Add network-wide message loss on top of the base rate; the
        returned token removes it (:meth:`remove_loss_window`).  Windows
        compound independently with each other and the base rate."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        token = self._new_token()
        self._loss_windows[token] = probability
        return token

    def remove_loss_window(self, token: int) -> None:
        self._loss_windows.pop(token, None)

    def add_duplication_window(self, probability: float) -> int:
        """Add network-wide duplication on top of the base rate; the
        returned token removes it (:meth:`remove_duplication_window`)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        token = self._new_token()
        self._dup_windows[token] = probability
        return token

    def remove_duplication_window(self, token: int) -> None:
        self._dup_windows.pop(token, None)

    def effective_loss_probability(self, src: str, dst: str) -> float:
        """Base loss, loss windows, and link degradation, compounded."""
        survive = 1.0 - self.loss_probability
        for p in self._loss_windows.values():
            survive *= 1.0 - p
        survive *= 1.0 - self.link_loss_probability(src, dst)
        return 1.0 - survive

    def effective_duplicate_probability(self) -> float:
        survive = 1.0 - self.duplicate_probability
        for p in self._dup_windows.values():
            survive *= 1.0 - p
        return 1.0 - survive

    # -- observation ------------------------------------------------------

    def add_tap(self, tap: Callable[[Message], None]) -> None:
        """Register a callback observing every accepted message (tracing)."""
        self._message_taps.append(tap)

    def snapshot(self) -> NetworkStats:
        """A copy of the counters, for window-based measurement."""
        return self.stats.copy()

    def reset_counters(self) -> None:
        self.stats = NetworkStats()

    # -- transmission -----------------------------------------------------

    def send(self, message: Message) -> None:
        """Accept a message for delivery (or inject a fault instead)."""
        message.send_time = self.sim.now
        size = self.size_model(message) if self.size_model is not None else 0
        self.stats.record(message, size)
        for tap in self._message_taps:
            tap(message)
        if self.obs is not None:
            self.obs.on_send(message, size)

        if message.dst not in self._nodes:
            # Chaos schedules may address nodes a deployment never
            # instantiated; mid-simulation that is a black hole, not a
            # programming error.
            self.stats.dropped += 1
            self.stats.unknown_destination += 1
            if self.obs is not None:
                self.obs.on_drop(message, "unknown_destination")
            return
        if self.is_blocked(message.src, message.dst):
            self.stats.dropped += 1
            if self.obs is not None:
                self.obs.on_drop(message, "partition")
            return
        # Fixed draw sequence: one delivery-delay draw per accepted
        # message, consumed *before* the loss gate — losing a message
        # filters the delay sequence instead of shifting it, so every
        # survivor keeps exactly the delay the lossless run gave it.
        delay = self.delay_model.delay(message.src, message.dst, self._delay_rng)
        loss = self.effective_loss_probability(message.src, message.dst)
        if loss and self._loss_rng.random() < loss:
            self.stats.dropped += 1
            if self.obs is not None:
                self.obs.on_drop(message, "loss")
            return

        self._schedule_delivery(message, delay)
        dup = self.effective_duplicate_probability()
        if dup and self._dup_rng.random() < dup:
            self.stats.duplicated += 1
            if self.obs is not None:
                self.obs.on_duplicate(message)
            # The duplicate's delay comes from the dup stream too, so a
            # duplication event never perturbs the primary delay sequence.
            self._schedule_delivery(
                message.duplicate(),
                self.delay_model.delay(message.src, message.dst, self._dup_rng),
            )

    def send_many(self, messages: Iterable[Message]) -> None:
        """Accept a batch of messages; byte-identical to a loop of
        :meth:`send`.

        Every per-message step — stats, taps, fault checks, and the
        per-purpose RNG draws — runs in message order exactly as the
        loop would, so delay/loss/duplication sequences are unchanged.
        The saving is in scheduling: accepted deliveries accumulate into
        one staged kernel batch (:meth:`~repro.sim.kernel.Simulator.
        schedule_each`) instead of N individual wheel insertions.
        Sequence numbers are reserved in the same order the loop would
        consume them (a duplication event flushes the pending batch so
        the duplicate's sequence lands right after its primary's), so
        traces are identical down to tie-breaking.
        """
        sim = self.sim
        controller = sim.controller
        delays: List[float] = []
        batch: List[Message] = []
        for message in messages:
            message.send_time = sim.now
            size = self.size_model(message) if self.size_model is not None else 0
            self.stats.record(message, size)
            for tap in self._message_taps:
                tap(message)
            if self.obs is not None:
                self.obs.on_send(message, size)
            if message.dst not in self._nodes:
                self.stats.dropped += 1
                self.stats.unknown_destination += 1
                if self.obs is not None:
                    self.obs.on_drop(message, "unknown_destination")
                continue
            if self.is_blocked(message.src, message.dst):
                self.stats.dropped += 1
                if self.obs is not None:
                    self.obs.on_drop(message, "partition")
                continue
            delay = self.delay_model.delay(message.src, message.dst, self._delay_rng)
            loss = self.effective_loss_probability(message.src, message.dst)
            if loss and self._loss_rng.random() < loss:
                self.stats.dropped += 1
                if self.obs is not None:
                    self.obs.on_drop(message, "loss")
                continue
            delay += self._link_delay.get((message.src, message.dst), 0.0)
            if controller is not None:
                delay = controller.message_delay(message, delay)
            if delay <= 0:
                # Ready-lane deliveries take no sequence number, so they
                # need no flush to stay in order.
                sim.call_later(delay, self._deliver, message)
            else:
                delays.append(delay)
                batch.append(message)
            dup = self.effective_duplicate_probability()
            if dup and self._dup_rng.random() < dup:
                if delays:
                    sim.schedule_each(delays, self._deliver, batch)
                    delays = []
                    batch = []
                self.stats.duplicated += 1
                if self.obs is not None:
                    self.obs.on_duplicate(message)
                self._schedule_delivery(
                    message.duplicate(),
                    self.delay_model.delay(message.src, message.dst, self._dup_rng),
                )
        if delays:
            sim.schedule_each(delays, self._deliver, batch)

    def _schedule_delivery(self, message: Message, delay: float) -> None:
        delay += self._link_delay.get((message.src, message.dst), 0.0)
        controller = self.sim.controller
        if controller is not None:
            delay = controller.message_delay(message, delay)
        # Deliveries are never cancelled, so skip the Timer handle.
        self.sim.call_later(delay, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None:  # pragma: no cover - node removal is not modelled
            return
        # Partitions that formed while the message was in flight also drop
        # it: a partition severs the physical path.
        if self.is_blocked(message.src, message.dst):
            self.stats.dropped += 1
            if self.obs is not None:
                self.obs.on_drop(message, "partition_in_flight")
            return
        if self.obs is not None:
            self.obs.on_deliver(message)
        node.deliver(message)
        # Recycle the message once delivery proved no one kept it: the
        # only references left are the kernel entry's args tuple, this
        # frame's parameter, and getrefcount's own argument.  A reply
        # future, RPC-timeout closure, tracer record, or spawned handler
        # generator each add a reference and veto reuse.
        if getrefcount(message) == 3:
            message.release()


class NodeLike:
    """Structural interface the network expects (see repro.sim.node)."""

    node_id: str

    def deliver(self, message: Message) -> None:  # pragma: no cover - interface
        raise NotImplementedError
