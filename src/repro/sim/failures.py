"""Failure injection utilities.

The availability and fault-tolerance experiments need repeatable failure
patterns.  This module provides:

* :func:`crash_for` / :func:`partition_for` — one-shot scheduled faults;
* :class:`FailureSchedule` — an explicit timeline of crash/recover and
  partition/heal events, convenient for scenario tests;
* :class:`BernoulliOutages` — per-epoch independent node outages with
  probability *p*, the stochastic model behind the paper's availability
  analysis (per-node unavailability ``p = 0.01``, independent failures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from .kernel import Simulator
from .network import Network
from .node import Node

__all__ = [
    "crash_for",
    "partition_for",
    "FailureEvent",
    "FailureSchedule",
    "BernoulliOutages",
]


def crash_for(sim: Simulator, node: Node, at: float, duration: float) -> None:
    """Crash *node* at time *at* and recover it *duration* ms later."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    sim.schedule(at, node.crash)
    sim.schedule(at + duration, node.recover)


def partition_for(
    sim: Simulator,
    network: Network,
    groups: Sequence[Iterable[str]],
    at: float,
    duration: float,
) -> None:
    """Partition the network into *groups* at *at*; heal *duration* ms later.

    Healing is token-scoped: only the blocks this partition installed are
    removed, so overlapping :func:`partition_for` windows compose freely.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    token_box: List[int] = []

    def start() -> None:
        token_box.append(network.partition(*groups))

    def end() -> None:
        if token_box:
            network.heal(token_box.pop())

    sim.schedule(at, start)
    sim.schedule(at + duration, end)


@dataclass
class FailureEvent:
    """One entry of a :class:`FailureSchedule`.

    ``action`` is one of ``"crash"``, ``"recover"``, ``"partition"``,
    ``"heal"``.  ``nodes`` names the crash/recover target(s);
    ``groups`` supplies partition groups.  ``tag`` names a partition so a
    later tagged heal removes only that partition's blocks (untagged
    heal remains heal-everything).
    """

    time: float
    action: str
    nodes: Tuple[str, ...] = ()
    groups: Tuple[Tuple[str, ...], ...] = ()
    tag: Optional[str] = None


@dataclass
class FailureSchedule:
    """A declarative fault timeline, applied onto a simulator/network."""

    events: List[FailureEvent] = field(default_factory=list)

    def crash(self, time: float, *nodes: str) -> "FailureSchedule":
        self.events.append(FailureEvent(time, "crash", nodes=tuple(nodes)))
        return self

    def recover(self, time: float, *nodes: str) -> "FailureSchedule":
        self.events.append(FailureEvent(time, "recover", nodes=tuple(nodes)))
        return self

    def partition(self, time: float, *groups: Iterable[str],
                  tag: Optional[str] = None) -> "FailureSchedule":
        self.events.append(
            FailureEvent(time, "partition",
                         groups=tuple(tuple(g) for g in groups), tag=tag)
        )
        return self

    def heal(self, time: float, tag: Optional[str] = None) -> "FailureSchedule":
        """Heal everything, or — with *tag* — just that tagged partition."""
        self.events.append(FailureEvent(time, "heal", tag=tag))
        return self

    def install(self, sim: Simulator, network: Network) -> None:
        """Schedule every event onto *sim* against *network*'s nodes."""
        tokens: dict = {}  # tag -> partition token, filled at run time
        for event in self.events:
            if event.action == "crash":
                for node_id in event.nodes:
                    sim.schedule(event.time, network.node(node_id).crash)
            elif event.action == "recover":
                for node_id in event.nodes:
                    sim.schedule(event.time, network.node(node_id).recover)
            elif event.action == "partition":
                groups, tag = event.groups, event.tag

                def do_partition(g=groups, t=tag) -> None:
                    token = network.partition(*g)
                    if t is not None:
                        tokens[t] = token

                sim.schedule(event.time, do_partition)
            elif event.action == "heal":
                tag = event.tag

                def do_heal(t=tag) -> None:
                    if t is None:
                        network.heal()
                    else:
                        token = tokens.pop(t, None)
                        if token is not None:
                            network.heal(token)

                sim.schedule(event.time, do_heal)
            else:
                raise ValueError(f"unknown failure action {event.action!r}")


class BernoulliOutages:
    """Independent per-epoch node outages.

    Time is divided into epochs of ``epoch_ms``.  At the start of each
    epoch every managed node is independently down with probability
    ``p`` for the whole epoch.  This is the discrete analogue of the
    paper's availability model (Section 4.2): node failures — server
    crashes and network failures alike — are independent with marginal
    unavailability *p*.

    Use :meth:`start` to begin injecting; outages stop after
    ``total_epochs`` epochs (or run forever when ``None``).
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[Node],
        p: float,
        epoch_ms: float,
        total_epochs: Optional[int] = None,
    ) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        if epoch_ms <= 0:
            raise ValueError("epoch_ms must be positive")
        self.sim = sim
        self.nodes = list(nodes)
        self.p = p
        self.epoch_ms = epoch_ms
        self.total_epochs = total_epochs
        self.epochs_run = 0
        self.outage_log: List[Tuple[float, str]] = []

    def start(self, at: float = 0.0) -> None:
        self.sim.schedule(at, self._epoch)

    def _epoch(self) -> None:
        if self.total_epochs is not None and self.epochs_run >= self.total_epochs:
            for node in self.nodes:
                node.recover()
            return
        self.epochs_run += 1
        for node in self.nodes:
            down = self.sim.rng.random() < self.p
            if down and node.alive:
                node.crash()
                self.outage_log.append((self.sim.now, node.node_id))
            elif not down and not node.alive:
                node.recover()
        self.sim.schedule(self.epoch_ms, self._epoch)
