"""Per-node real-time clocks with bounded drift.

The paper's system model (Section 2) assumes each node can read a local
real-time clock, and that there is a maximum drift rate ``maxDrift``
between any pair of clocks.  The DQVL lease arithmetic depends only on
that bound: an OQS node conservatively shortens every granted lease by a
factor of ``(1 - maxDrift)``.

:class:`DriftingClock` models a clock whose reading is an affine function
of simulated time::

    reading(t) = offset + (1 + drift) * t

with ``|drift| <= max_drift``.  The paper's correctness argument requires
only the *rate* bound; constant offsets are also supported so tests can
explore skewed starting points.
"""

from __future__ import annotations

from typing import Optional

from .kernel import Simulator

__all__ = ["DriftingClock", "PerfectClock"]


class DriftingClock:
    """A local real-time clock with a bounded, constant drift rate.

    Parameters
    ----------
    sim:
        The simulator whose time base this clock is derived from.
    drift:
        Constant rate error; the clock runs at ``(1 + drift)`` times real
        time.  Must satisfy ``abs(drift) <= max_drift``.
    offset:
        Constant offset added to the reading, in milliseconds.
    max_drift:
        The system-wide bound ``maxDrift``; stored so lease code can apply
        the conservative correction without global configuration.
    """

    __slots__ = ("_sim", "drift", "offset", "max_drift")

    def __init__(
        self,
        sim: Simulator,
        drift: float = 0.0,
        offset: float = 0.0,
        max_drift: float = 0.0,
    ) -> None:
        if abs(drift) > max_drift + 1e-12:
            raise ValueError(
                f"drift {drift} exceeds the declared bound max_drift={max_drift}"
            )
        self._sim = sim
        self.drift = drift
        self.offset = offset
        self.max_drift = max_drift

    def now(self) -> float:
        """Current local clock reading in milliseconds."""
        return self.offset + (1.0 + self.drift) * self._sim.now

    def local_duration(self, real_duration: float) -> float:
        """Convert a real (simulated-true-time) duration to local units."""
        return real_duration * (1.0 + self.drift)

    def real_duration(self, local_duration: float) -> float:
        """Convert a local-clock duration to real (simulated) time."""
        return local_duration / (1.0 + self.drift)

    def conservative_expiry(self, request_time_local: float, lease_length: float) -> float:
        """Compute a safe local expiry for a lease granted remotely.

        Implements the paper's rule (Section 3.2): the requester sets

            ``expires = t0 + L * (1 - maxDrift)``

        where ``t0`` is the *local* time the renewal request was sent and
        ``L`` is the granted lease length.  Shortening by ``(1 - maxDrift)``
        guarantees the holder's view of the lease never outlives the
        granter's, whatever the actual drift between the two clocks.
        """
        return request_time_local + lease_length * (1.0 - self.max_drift)


class PerfectClock(DriftingClock):
    """A convenience clock with no drift and no offset."""

    def __init__(self, sim: Simulator) -> None:
        super().__init__(sim, drift=0.0, offset=0.0, max_drift=0.0)
