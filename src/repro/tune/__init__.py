"""Quorum-shape autotuning (``repro tune``).

Enumerates (IQS, OQS) candidate shapes over the declarative
:class:`repro.quorum.QuorumSpec` API, scores each analytically on
expected latency, per-node load, and availability, emits the Pareto
frontier as a byte-stable JSON artifact, and optionally validates the
winners through the real simulator.  See DESIGN.md §17 for the scoring
model and tolerances.
"""

from .candidates import candidate_pairs, iqs_candidates, oqs_candidates
from .model import CandidateScore, LatencyModel, score_candidate, tri_max_mean
from .runner import (
    TuneConfig,
    TuneReport,
    ValidationRow,
    canonical_json,
    pareto_frontier,
    run_tune,
)

__all__ = [
    "CandidateScore",
    "LatencyModel",
    "TuneConfig",
    "TuneReport",
    "ValidationRow",
    "candidate_pairs",
    "canonical_json",
    "iqs_candidates",
    "oqs_candidates",
    "pareto_frontier",
    "run_tune",
    "score_candidate",
    "tri_max_mean",
]
