"""The ``repro tune`` autotuner: enumerate, score, rank, validate.

:func:`run_tune` scores every candidate (IQS, OQS) shape pair from
:mod:`repro.tune.candidates` with the analytic model in
:mod:`repro.tune.model`, keeps the Pareto frontier over
(latency, load, availability), compares every candidate against the
paper's default pair, and — optionally — validates the top frontier
entries through the real simulator (a response-time experiment for the
latency axis, a measured-availability run for the availability axis),
reporting analytic-vs-simulated deltas against documented tolerances
(DESIGN.md §17).

Everything analytic is pure deterministic float arithmetic and the
validation runs are seeded, so the emitted report — and in particular
:meth:`TuneReport.frontier_json` — is byte-identical across runs of the
same code and config.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..edge.topology import EdgeTopologyConfig
from ..harness.availability import AvailabilitySimConfig
from ..harness.experiment import ExperimentConfig
from ..quorum.spec import DEFAULT_IQS_SPEC, DEFAULT_OQS_SPEC
from .candidates import candidate_pairs
from .model import CandidateScore, LatencyModel, score_candidate

__all__ = [
    "TuneConfig",
    "TuneReport",
    "ValidationRow",
    "canonical_json",
    "pareto_frontier",
    "run_tune",
]


def canonical_json(obj: Any) -> str:
    """Byte-stable JSON: sorted keys, fixed indent, trailing newline."""
    return json.dumps(obj, sort_keys=True, indent=2) + "\n"


@dataclass(frozen=True)
class TuneConfig:
    """Parameters of one autotuning run."""

    #: edge-server count: IQS and OQS each span this many nodes, as in
    #: the paper's co-located deployment
    num_edges: int = 5
    #: workload read fraction f (write ratio is 1 - f)
    read_fraction: float = 0.9
    #: per-node unavailability for the availability axis
    p: float = 0.05
    #: per-message uniform jitter; must be > 0 for quorum *size* to
    #: affect fault-free latency (see DESIGN.md §17)
    jitter_ms: float = 5.0
    seed: int = 0
    #: validate this many frontier entries (plus the default pair)
    #: through the simulator; 0 skips validation
    validate_top: int = 0
    #: response-time validation workload size
    ops_per_client: int = 150
    num_clients: int = 3
    #: availability validation length (per-epoch Bernoulli outages)
    epochs: int = 150
    #: retry budget for the availability validation runs.  The analytic
    #: model counts an operation as rejected only when no live quorum
    #: exists; with too few attempts the simulator also rejects
    #: operations that merely *sampled* a dead node, inflating measured
    #: unavailability by ~5x at p = 0.05.  Four attempts let QRPCs route
    #: around dead nodes, which is the regime the formula describes.
    max_attempts: int = 4
    #: documented cross-check tolerances
    latency_rel_tol: float = 0.35
    availability_abs_tol: float = 0.05

    def __post_init__(self) -> None:
        if self.num_edges < 1:
            raise ValueError("num_edges must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        if self.validate_top < 0:
            raise ValueError("validate_top must be >= 0")


@dataclass(frozen=True)
class ValidationRow:
    """Analytic-vs-simulated cross-check for one candidate."""

    iqs: str
    oqs: str
    analytic_latency_ms: float
    simulated_latency_ms: float
    latency_rel_error: float
    latency_within_tol: bool
    analytic_availability: float
    simulated_availability: float
    availability_abs_error: float
    availability_within_tol: bool

    @property
    def ok(self) -> bool:
        return self.latency_within_tol and self.availability_within_tol

    def to_json_obj(self) -> Dict[str, Any]:
        return {
            "iqs": self.iqs,
            "oqs": self.oqs,
            "analytic_latency_ms": round(self.analytic_latency_ms, 6),
            "simulated_latency_ms": round(self.simulated_latency_ms, 6),
            "latency_rel_error": round(self.latency_rel_error, 6),
            "latency_within_tol": self.latency_within_tol,
            "analytic_availability": round(self.analytic_availability, 9),
            "simulated_availability": round(self.simulated_availability, 9),
            "availability_abs_error": round(self.availability_abs_error, 9),
            "availability_within_tol": self.availability_within_tol,
            "ok": self.ok,
        }


@dataclass
class TuneReport:
    """Everything ``repro tune`` found, JSON-serialisable."""

    config: TuneConfig
    num_candidates: int
    default: CandidateScore
    frontier: List[CandidateScore]
    #: candidates strictly better than the default on >= 2 of 3 axes
    dominating: List[Tuple[CandidateScore, List[str]]]
    validation: List[ValidationRow] = field(default_factory=list)

    @property
    def recommended(self) -> Optional[CandidateScore]:
        """The frontier's best default-beater, if any (the dominating
        list is already ranked: most axes won, then the least
        availability given up, then lowest latency)."""
        return self.dominating[0][0] if self.dominating else None

    def frontier_json_obj(self) -> Dict[str, Any]:
        """The byte-comparable frontier artifact (CI diffs this)."""
        return {
            "config": asdict(self.config),
            "num_candidates": self.num_candidates,
            "default": self.default.to_json_obj(),
            "frontier": [s.to_json_obj() for s in self.frontier],
        }

    def frontier_json(self) -> str:
        return canonical_json(self.frontier_json_obj())

    def to_json_obj(self) -> Dict[str, Any]:
        obj = self.frontier_json_obj()
        obj["dominating"] = [
            {**score.to_json_obj(), "axes_better": axes}
            for score, axes in self.dominating
        ]
        recommended = self.recommended
        obj["recommended"] = recommended.to_json_obj() if recommended else None
        obj["validation"] = [row.to_json_obj() for row in self.validation]
        return obj


def pareto_frontier(scores: Sequence[CandidateScore]) -> List[CandidateScore]:
    """Non-dominated scores in canonical order: ascending latency, then
    load, then descending availability, with the spec strings as the
    final tie-break so the frontier is a total order."""
    frontier = [
        s for s in scores if not any(other.dominates(s) for other in scores)
    ]
    frontier.sort(
        key=lambda s: (s.latency_ms, s.load, -s.availability, s.iqs, s.oqs)
    )
    # identical scores from different specs survive dominance filtering
    # together; keep one per score point, first spec pair in order
    deduped: List[CandidateScore] = []
    for s in frontier:
        if deduped and (
            s.latency_ms,
            s.load,
            s.availability,
        ) == (
            deduped[-1].latency_ms,
            deduped[-1].load,
            deduped[-1].availability,
        ):
            continue
        deduped.append(s)
    return deduped


def _validation_configs(
    config: TuneConfig, pairs: Sequence[Tuple[str, str]]
) -> List[Any]:
    """One latency and one availability config per candidate pair."""
    write_ratio = 1.0 - config.read_fraction
    sweep_configs: List[Any] = []
    for iqs, oqs in pairs:
        sweep_configs.append(
            ExperimentConfig(
                protocol="dqvl",
                write_ratio=write_ratio,
                locality=1.0,
                num_edges=config.num_edges,
                num_clients=config.num_clients,
                ops_per_client=config.ops_per_client,
                seed=config.seed,
                deploy_kwargs={"iqs_spec": iqs, "oqs_spec": oqs},
                topology=EdgeTopologyConfig(jitter_ms=config.jitter_ms),
            )
        )
        sweep_configs.append(
            AvailabilitySimConfig(
                protocol="dqvl",
                write_ratio=write_ratio,
                num_replicas=config.num_edges,
                p=config.p,
                epochs=config.epochs,
                seed=config.seed,
                max_attempts=config.max_attempts,
                iqs_spec=iqs,
                oqs_spec=oqs,
            )
        )
    return sweep_configs


def _validate(
    config: TuneConfig,
    candidates: Sequence[CandidateScore],
    workers: Optional[int],
    cache: bool,
) -> List[ValidationRow]:
    from ..harness.sweeps import run_sweep

    pairs = [(s.iqs, s.oqs) for s in candidates]
    points = run_sweep(
        _validation_configs(config, pairs), workers=workers, cache=cache
    )
    rows: List[ValidationRow] = []
    for i, score in enumerate(candidates):
        response, availability = points[2 * i], points[2 * i + 1]
        simulated_ms = response.summary.overall.mean
        rel_error = (
            abs(simulated_ms - score.latency_ms) / score.latency_ms
            if score.latency_ms
            else 0.0
        )
        measured_av = availability.availability
        av_error = measured_av - score.availability
        rows.append(
            ValidationRow(
                iqs=score.iqs,
                oqs=score.oqs,
                analytic_latency_ms=score.latency_ms,
                simulated_latency_ms=simulated_ms,
                latency_rel_error=rel_error,
                latency_within_tol=rel_error <= config.latency_rel_tol,
                analytic_availability=score.availability,
                simulated_availability=measured_av,
                availability_abs_error=av_error,
                availability_within_tol=abs(av_error)
                <= config.availability_abs_tol,
            )
        )
    return rows


def run_tune(
    config: Optional[TuneConfig] = None,
    *,
    workers: Optional[int] = None,
    cache: bool = True,
) -> TuneReport:
    """Score every candidate shape pair and assemble the report."""
    config = config or TuneConfig()
    n = config.num_edges
    delays = LatencyModel(jitter_ms=config.jitter_ms)

    scores = [
        score_candidate(
            iqs, oqs, n, n, config.read_fraction, config.p, delays
        )
        for iqs, oqs in candidate_pairs(n, n)
    ]
    default = score_candidate(
        DEFAULT_IQS_SPEC,
        DEFAULT_OQS_SPEC,
        n,
        n,
        config.read_fraction,
        config.p,
        delays,
    )

    frontier = pareto_frontier(scores)
    dominating = sorted(
        (
            (s, s.axes_better_than(default))
            for s in frontier
            if len(s.axes_better_than(default)) >= 2
        ),
        key=lambda item: (
            -len(item[1]),
            -item[0].availability,
            item[0].latency_ms,
            item[0].iqs,
        ),
    )

    validation: List[ValidationRow] = []
    if config.validate_top > 0:
        top = frontier[: config.validate_top]
        # always cross-check the default pair too, as the baseline row
        if not any(
            s.iqs == default.iqs and s.oqs == default.oqs for s in top
        ):
            top = list(top) + [default]
        validation = _validate(config, top, workers, cache)

    return TuneReport(
        config=config,
        num_candidates=len(scores),
        default=default,
        frontier=frontier,
        dominating=dominating,
        validation=validation,
    )
