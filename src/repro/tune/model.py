"""Analytic scoring model for the quorum-shape autotuner.

Each (IQS spec, OQS spec) candidate is scored on three axes without
touching the simulator:

* **latency** — expected mean operation latency under a read fraction
  ``f``, generalising :mod:`repro.analysis.response_time` to arbitrary
  quorum shapes.  A QRPC to a quorum of size ``q`` waits for the
  *maximum* of ``q`` round trips; with per-leg uniform jitter
  ``U(0, j)`` each round trip is ``2d + U + U'``, so the expectation is
  ``2d + E[max of q triangular(0, 2j) draws]`` — computed by
  deterministic fixed-grid integration of ``1 - F(t)^q``
  (:func:`tri_max_mean`).  This is what makes smaller quorums *strictly*
  faster once jitter is nonzero: the max of fewer draws is smaller.
* **load** — mean per-node messages handled per client operation: reads
  touch an OQS read quorum (plus, on a miss, an IQS read quorum for
  validation/renewal); writes touch an IQS read quorum (logical-clock
  read), an IQS write quorum, and an OQS write quorum (invalidation).
* **availability** — the paper's min-composition formula generalised to
  the candidate systems' own closed forms
  (:func:`repro.analysis.availability.dqvl_system_availability`).

Model assumptions (documented in DESIGN.md §17): full locality (reads
hit the client's co-located OQS node when the OQS read quorum is a
singleton), read-miss probability equal to the write fraction (the same
heuristic :mod:`repro.analysis.response_time` uses), and write-through
invalidation on every write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.availability import dqvl_system_availability
from ..quorum.spec import QuorumSpec

__all__ = ["LatencyModel", "CandidateScore", "score_candidate", "tri_max_mean"]

#: fixed integration grid for :func:`tri_max_mean` — deterministic, and
#: fine enough that the quadrature error (< 1e-3 ms at j = 5) is far
#: below the model's own fidelity
_TRI_STEPS = 512


def tri_max_mean(q: int, jitter_ms: float) -> float:
    """``E[max of q i.i.d. triangular(0, 2j) draws]`` (extra wait of a
    size-*q* QRPC beyond its deterministic round trip).

    Each leg's round trip carries two independent ``U(0, j)`` jitters;
    their sum is triangular on ``[0, 2j]`` with CDF ``t^2 / 2j^2`` below
    ``j`` and ``1 - (2j - t)^2 / 2j^2`` above.  The expectation of the
    max is ``∫ (1 - F(t)^q) dt`` over ``[0, 2j]``, integrated by the
    trapezoid rule on a fixed grid.
    """
    if jitter_ms <= 0.0 or q <= 0:
        return 0.0
    j = float(jitter_ms)
    hi = 2.0 * j
    dt = hi / _TRI_STEPS

    def integrand(t: float) -> float:
        if t <= j:
            cdf = (t * t) / (2.0 * j * j)
        else:
            rest = hi - t
            cdf = 1.0 - (rest * rest) / (2.0 * j * j)
        return 1.0 - cdf**q

    total = 0.5 * (integrand(0.0) + integrand(hi))
    for i in range(1, _TRI_STEPS):
        total += integrand(i * dt)
    return total * dt


@dataclass(frozen=True)
class LatencyModel:
    """Topology delay parameters for the analytic latency model.

    Defaults mirror :class:`repro.edge.topology.EdgeTopologyConfig`:
    client↔home-edge ``lan_ms``, client↔remote-edge ``client_wan_ms``,
    edge↔edge ``server_wan_ms`` (one-way), plus per-leg uniform jitter
    ``U(0, jitter_ms)``.
    """

    lan_ms: float = 8.0
    client_wan_ms: float = 86.0
    server_wan_ms: float = 80.0
    jitter_ms: float = 5.0

    def qrpc_ms(self, one_way_ms: float, quorum_size: int) -> float:
        """Expected latency of a QRPC waiting on *quorum_size* legs."""
        return 2.0 * one_way_ms + tri_max_mean(quorum_size, self.jitter_ms)

    def read_ms(self, r_oqs: int, r_iqs: int, miss_rate: float) -> float:
        """Expected DQVL read latency.

        A read-one OQS quorum is served by the co-located replica (one
        LAN round trip); larger read quorums must reach remote edges
        over the client WAN.  A miss adds the OQS→IQS validation/renewal
        QRPC over the server WAN.
        """
        if r_oqs <= 1:
            hit = self.qrpc_ms(self.lan_ms, 1)
        else:
            # the co-located leg never dominates the remote legs
            hit = self.qrpc_ms(self.client_wan_ms, r_oqs - 1)
        renewal = self.qrpc_ms(self.server_wan_ms, r_iqs)
        return hit + miss_rate * renewal

    def write_ms(self, r_iqs: int, w_iqs: int, w_oqs: int) -> float:
        """Expected DQVL write latency: the logical-clock read and the
        write proper over the client WAN, then write-through
        invalidation of an OQS write quorum over the server WAN."""
        return (
            self.qrpc_ms(self.client_wan_ms, r_iqs)
            + self.qrpc_ms(self.client_wan_ms, w_iqs)
            + self.qrpc_ms(self.server_wan_ms, w_oqs)
        )


@dataclass(frozen=True)
class CandidateScore:
    """One candidate's position on the three tuning axes."""

    iqs: str
    oqs: str
    latency_ms: float
    read_ms: float
    write_ms: float
    load: float
    availability: float

    def dominates(self, other: "CandidateScore") -> bool:
        """Pareto dominance: no worse on every axis, better on one."""
        no_worse = (
            self.latency_ms <= other.latency_ms
            and self.load <= other.load
            and self.availability >= other.availability
        )
        better = (
            self.latency_ms < other.latency_ms
            or self.load < other.load
            or self.availability > other.availability
        )
        return no_worse and better

    def axes_better_than(self, other: "CandidateScore") -> List[str]:
        """The axes on which this score is *strictly* better."""
        axes = []
        if self.latency_ms < other.latency_ms:
            axes.append("latency")
        if self.load < other.load:
            axes.append("load")
        if self.availability > other.availability:
            axes.append("availability")
        return axes

    def to_json_obj(self) -> Dict[str, object]:
        return {
            "iqs": self.iqs,
            "oqs": self.oqs,
            "latency_ms": round(self.latency_ms, 6),
            "read_ms": round(self.read_ms, 6),
            "write_ms": round(self.write_ms, 6),
            "load": round(self.load, 6),
            "availability": round(self.availability, 9),
        }


def score_candidate(
    iqs_spec: QuorumSpec,
    oqs_spec: QuorumSpec,
    num_iqs: int,
    num_oqs: int,
    read_fraction: float,
    p: float,
    delays: LatencyModel,
) -> CandidateScore:
    """Score one (IQS, OQS) shape pair analytically."""
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    iqs = iqs_spec.build([f"iqs{k}" for k in range(num_iqs)])
    oqs = oqs_spec.build([f"oqs{k}" for k in range(num_oqs)])
    f = read_fraction
    miss = 1.0 - f
    r_i, w_i = iqs.read_quorum_size, iqs.write_quorum_size
    r_o, w_o = oqs.read_quorum_size, oqs.write_quorum_size

    read_ms = delays.read_ms(r_o, r_i, miss)
    write_ms = delays.write_ms(r_i, w_i, w_o)
    latency_ms = f * read_ms + (1.0 - f) * write_ms

    # mean per-node messages handled per client operation
    messages = f * (r_o + miss * r_i) + (1.0 - f) * (r_i + w_i + w_o)
    load = messages / (num_iqs + num_oqs)

    availability = dqvl_system_availability(1.0 - f, iqs, oqs, p)
    return CandidateScore(
        iqs=str(iqs_spec),
        oqs=str(oqs_spec),
        latency_ms=latency_ms,
        read_ms=read_ms,
        write_ms=write_ms,
        load=load,
        availability=availability,
    )
