"""Candidate (IQS, OQS) quorum-shape enumeration for ``repro tune``.

The IQS family covers every shape the :mod:`repro.quorum` package can
build over ``n`` nodes:

* all **majority** read/write splits ``(r, w)`` with ``r + w > n`` —
  the intersection requirement for regular semantics;
* all distinct **grid** layouts ``rows x ceil(n / rows)`` (ragged grids
  allowed; duplicates by shape are collapsed);
* one **weighted-voting** family: a heavy first node holding
  ``n // 2 + 1`` votes, singleton votes elsewhere, majority-of-total
  thresholds — the "primary-biased" point of the weighted space;
* **rowa** and **single**.

The OQS family stays write-all (so invalidations reach every output
replica and :func:`repro.core.cluster._check_owq_safety` stays silent)
but varies the read quorum: read-one (the paper's ROWA default) plus
read-2 and read-3 variants that trade read latency for read-side fault
tolerance.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..quorum.spec import QuorumSpec

__all__ = ["iqs_candidates", "oqs_candidates", "candidate_pairs"]


def iqs_candidates(n: int) -> List[QuorumSpec]:
    """Every distinct IQS shape over *n* nodes (see module docstring)."""
    if n < 1:
        raise ValueError("need at least one IQS node")
    specs: List[QuorumSpec] = []
    for r in range(1, n + 1):
        for w in range(1, n + 1):
            if r + w > n:
                specs.append(QuorumSpec(kind="majority", read_size=r, write_size=w))
    seen_shapes = set()
    for rows in range(1, n + 1):
        cols = math.ceil(n / rows)
        if (rows, cols) in seen_shapes:
            continue
        seen_shapes.add((rows, cols))
        specs.append(QuorumSpec(kind="grid", rows=rows, cols=cols))
    if n >= 2:
        votes = (n // 2 + 1,) + (1,) * (n - 1)
        threshold = sum(votes) // 2 + 1
        specs.append(
            QuorumSpec(
                kind="weighted",
                votes=votes,
                read_threshold=threshold,
                write_threshold=threshold,
            )
        )
    specs.append(QuorumSpec(kind="rowa"))
    specs.append(QuorumSpec(kind="single"))
    return specs


def oqs_candidates(n: int) -> List[QuorumSpec]:
    """Write-all OQS shapes over *n* nodes with varying read quorums."""
    if n < 1:
        raise ValueError("need at least one OQS node")
    specs = [QuorumSpec(kind="rowa")]
    for r in (2, 3):
        if r <= n:
            specs.append(QuorumSpec(kind="majority", read_size=r, write_size=n))
    return specs


def candidate_pairs(
    num_iqs: int, num_oqs: int
) -> List[Tuple[QuorumSpec, QuorumSpec]]:
    """The full cross product the tuner scores."""
    return [
        (iqs, oqs)
        for iqs in iqs_candidates(num_iqs)
        for oqs in oqs_candidates(num_oqs)
    ]
