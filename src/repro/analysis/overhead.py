"""Communication-overhead models (Figure 9).

The paper counts the average number of message exchanges per client
request, weighting all message types equally; the detailed model is in
the dissertation, so we re-derive it here.  EXPERIMENTS.md documents the
derivation; in brief, with quorum sizes

* ``or_`` / ``ow`` — OQS read / write quorum,
* ``ir`` / ``iw`` — IQS read / write quorum,

and the single-hot-object interleaving model (an IID request stream with
write ratio ``w``), the event probabilities are:

* ``P(read miss) = w`` — a read misses exactly when the most recent
  operation on the object was a write (the first read of a read burst);
* ``P(write through) = 1 - w`` — a write must invalidate exactly when a
  read renewed callbacks since the previous write.

Per-event message counts (requests + replies):

* read hit: ``2 * or_``;
* read miss: ``2 * or_  +  2 * ir`` (each missing OQS read-quorum member
  renews from an IQS read quorum; with the paper's read-one OQS the
  factor is one renewal);
* write (always): ``2 * ir + 2 * iw`` (logical-clock read + quorum write);
* write through adds invalidations: every IQS write-quorum member that
  holds callbacks invalidates an OQS write quorum.  Callbacks live at
  the ``ir`` servers touched by the last renewal, so the expected number
  of invalidating servers is the quorum overlap ``E = iw * ir / n_iqs``
  (hypergeometric mean for independently sampled quorums), giving
  ``2 * ow * E`` extra messages.

Volume-lease renewals are charged separately via ``renewal_rate`` (extra
volume renewals per read; near zero once leases amortise across a
volume's objects — the A2 ablation measures this).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

__all__ = [
    "dqvl_messages_per_request",
    "majority_messages_per_request",
    "grid_messages_per_request",
    "rowa_messages_per_request",
    "rowa_async_messages_per_request",
    "primary_backup_messages_per_request",
    "protocol_messages_per_request",
]


def _check_w(w: float) -> None:
    if not 0.0 <= w <= 1.0:
        raise ValueError("write ratio w must be in [0, 1]")


def dqvl_messages_per_request(
    w: float,
    n_iqs: int,
    n_oqs: int,
    oqs_read_size: int = 1,
    oqs_write_size: Optional[int] = None,
    iqs_read_size: Optional[int] = None,
    iqs_write_size: Optional[int] = None,
    read_miss_rate: Optional[float] = None,
    write_through_rate: Optional[float] = None,
    renewal_rate: float = 0.0,
) -> float:
    """Expected messages per request for DQVL.

    ``read_miss_rate`` / ``write_through_rate`` default to the
    interleaving model (``w`` and ``1 - w``); pass measured rates to
    model bursty workloads (they shrink both, which is exactly how DQVL
    escapes its worst case).
    """
    _check_w(w)
    majority = n_iqs // 2 + 1
    ir = majority if iqs_read_size is None else iqs_read_size
    iw = majority if iqs_write_size is None else iqs_write_size
    or_ = oqs_read_size
    ow = n_oqs if oqs_write_size is None else oqs_write_size
    miss = w if read_miss_rate is None else read_miss_rate
    through = (1.0 - w) if write_through_rate is None else write_through_rate

    read_cost = 2.0 * or_ + miss * (2.0 * ir) + renewal_rate * (2.0 * ir)
    overlap = iw * ir / n_iqs  # expected invalidating IQS servers
    write_cost = 2.0 * ir + 2.0 * iw + through * (2.0 * ow * overlap)
    return (1.0 - w) * read_cost + w * write_cost


def majority_messages_per_request(w: float, n: int) -> float:
    """Majority quorum: reads one round to a majority; writes two."""
    _check_w(w)
    q = n // 2 + 1
    read_cost = 2.0 * q
    write_cost = 2.0 * q + 2.0 * q
    return (1.0 - w) * read_cost + w * write_cost


def grid_messages_per_request(
    w: float, rows: int, cols: int, n: Optional[int] = None
) -> float:
    """Grid quorum: read quorum = cols; write quorum = shortest column +
    cols - 1 (ragged grids have a shorter last column)."""
    _check_w(w)
    from ..quorum.grid import GridQuorumSystem

    n = n if n is not None else rows * cols
    grid = GridQuorumSystem([f"g{i}" for i in range(n)], rows=rows, cols=cols)
    read_cost = 2.0 * grid.read_quorum_size
    write_cost = 2.0 * grid.read_quorum_size + 2.0 * grid.write_quorum_size
    return (1.0 - w) * read_cost + w * write_cost


def rowa_messages_per_request(w: float, n: int) -> float:
    """ROWA: read one replica; write all replicas (one round)."""
    _check_w(w)
    return (1.0 - w) * 2.0 + w * (2.0 * n)


def rowa_async_messages_per_request(
    w: float, n: int, gossip_overhead_per_request: float = 0.0
) -> float:
    """ROWA-Async: local read (2), local write (2) plus one eager push
    to each peer (one-way, no ack); anti-entropy digests are charged via
    *gossip_overhead_per_request* (workload-dependent, 0 in the figure's
    per-request accounting)."""
    _check_w(w)
    read_cost = 2.0
    write_cost = 2.0 + (n - 1)
    return (1.0 - w) * read_cost + w * write_cost + gossip_overhead_per_request


def primary_backup_messages_per_request(w: float, n: int) -> float:
    """Primary/backup: both ops are one exchange with the primary; a
    write additionally fans one update to each backup."""
    _check_w(w)
    read_cost = 2.0
    write_cost = 2.0 + (n - 1)
    return (1.0 - w) * read_cost + w * write_cost


def protocol_messages_per_request(protocol: str, w: float, n: int, **kwargs) -> float:
    """Dispatcher for the Figure 9 bench; *n* is the replica count
    (DQVL: both IQS and OQS sizes unless overridden in kwargs)."""
    if protocol == "dqvl":
        n_iqs = kwargs.pop("n_iqs", n)
        n_oqs = kwargs.pop("n_oqs", n)
        return dqvl_messages_per_request(w, n_iqs=n_iqs, n_oqs=n_oqs, **kwargs)
    if protocol == "majority":
        return majority_messages_per_request(w, n)
    if protocol == "grid":
        rows = kwargs.get("rows")
        cols = kwargs.get("cols")
        if rows is None or cols is None:
            from .availability import default_grid_shape

            rows, cols = default_grid_shape(n)
        return grid_messages_per_request(w, rows, cols, n=n)
    if protocol == "rowa":
        return rowa_messages_per_request(w, n)
    if protocol == "rowa_async":
        return rowa_async_messages_per_request(w, n, **kwargs)
    if protocol == "primary_backup":
        return primary_backup_messages_per_request(w, n)
    raise KeyError(f"unknown protocol {protocol!r}")
