"""Message-size models for byte-level traffic accounting.

The paper's Figure 9 weights every message equally and says so ("the
study assumes the weights of all message types are equal").  Its
related-work section nevertheless argues in *bytes*: ghost-style
replicas receive "the timestamp and object ID of the write" rather than
the data, and dual-quorum's "use of invalidations also allows us to
reduce the future message propagation".  The A8 ablation quantifies
that: attach :class:`EdgeServiceSizeModel` to the simulated network and
measure bytes per operation instead of messages per operation.

The model is deliberately simple: every message pays a fixed header;
messages whose payload carries an object value (writes, read replies,
renewal replies, epidemic updates, primary/backup sync) add the value
size; volume-renewal replies add a small per-delayed-invalidation
entry.  Invalidations, acks, clock reads, and digests are header-only.
"""

from __future__ import annotations

from typing import Optional

from ..sim.messages import Message

__all__ = ["EdgeServiceSizeModel", "VALUE_BEARING_KINDS"]

#: message kinds whose payload ships an object value
VALUE_BEARING_KINDS = frozenset({
    # dual quorum
    "dq_write", "dq_read_reply", "obj_renew_reply", "vlobj_renew_reply",
    # majority register
    "mq_write", "mq_read_reply",
    # ROWA / ROWA-Async / primary-backup
    "rowa_write", "rowa_read_reply",
    "ra_write", "ra_read_reply", "ra_update",
    "pb_write", "pb_read_reply", "pb_sync",
    # bookstore
    "cat_update", "cat_pull_reply",
})


class EdgeServiceSizeModel:
    """Header + value-size accounting.

    Parameters
    ----------
    value_bytes:
        Size of one object value (the paper's profile objects — name,
        addresses, credit card, recent orders — are ~1 KiB).
    header_bytes:
        Fixed per-message overhead (framing, ids, clocks).
    delayed_entry_bytes:
        Per delayed-invalidation entry piggybacked on a volume renewal
        reply (object id + clock).
    """

    def __init__(
        self,
        value_bytes: int = 1024,
        header_bytes: int = 64,
        delayed_entry_bytes: int = 24,
    ) -> None:
        if min(value_bytes, header_bytes, delayed_entry_bytes) < 0:
            raise ValueError("sizes must be non-negative")
        self.value_bytes = value_bytes
        self.header_bytes = header_bytes
        self.delayed_entry_bytes = delayed_entry_bytes

    def __call__(self, message: Message) -> int:
        size = self.header_bytes
        if message.kind in VALUE_BEARING_KINDS:
            size += self.value_bytes
        delayed = message.get("delayed")
        if delayed:
            size += self.delayed_entry_bytes * len(delayed)
        digest = message.get("digest")
        if digest:
            size += self.delayed_entry_bytes * len(digest)
        return size
