"""Closed-form availability models (Figure 8).

The paper's model (Section 4.2): nodes fail independently with per-node
unavailability ``p`` (0.01 in the figures); a request is *rejected* when
the protocol cannot assemble the quorums regular semantics requires.
Availability is the accepted fraction under a workload with write ratio
``w``.  The paper's DQVL formula::

    av_DQVL = (1-w) * min(av_orq, av_irq) + w * min(av_iwq, av_irq)

is implemented verbatim; the baselines use the standard quorum counting
arguments (documented per function).  Unavailability is ``1 - av`` —
``1e-i`` is "i nines" of availability.

All formulas are exact sums, not Monte Carlo: Figure 8 spans
unavailabilities down to ``1e-12``, far below sampling resolution.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..quorum.majority import binomial_tail

__all__ = [
    "majority_availability",
    "grid_read_availability",
    "grid_write_availability",
    "dqvl_availability",
    "dqvl_system_availability",
    "majority_protocol_availability",
    "grid_protocol_availability",
    "rowa_availability",
    "rowa_async_availability",
    "primary_backup_availability",
    "protocol_unavailability",
    "default_grid_shape",
]


def _check_inputs(w: float, p: float) -> None:
    if not 0.0 <= w <= 1.0:
        raise ValueError("write ratio w must be in [0, 1]")
    if not 0.0 <= p <= 1.0:
        raise ValueError("per-node unavailability p must be in [0, 1]")


def majority_availability(n: int, quorum: int, p: float) -> float:
    """P[at least *quorum* of *n* nodes are alive]."""
    return binomial_tail(n, quorum, 1.0 - p)


def _grid_for(n: int, rows: Optional[int] = None, cols: Optional[int] = None):
    from ..quorum.grid import GridQuorumSystem, near_square_grid

    names = [f"g{i}" for i in range(n)]
    if rows is None or cols is None:
        return near_square_grid(names)
    return GridQuorumSystem(names, rows=rows, cols=cols)


def grid_read_availability(rows: int, cols: int, p: float) -> float:
    """Grid read quorum (one node per column): ``(1 - p^rows)^cols``."""
    return _grid_for(rows * cols, rows, cols).read_availability(p)


def grid_write_availability(rows: int, cols: int, p: float) -> float:
    """Grid write quorum (full column + column cover); see
    :meth:`repro.quorum.grid.GridQuorumSystem.write_availability`."""
    return _grid_for(rows * cols, rows, cols).write_availability(p)


def default_grid_shape(n: int) -> tuple:
    """The near-square (possibly ragged) rows x cols layout for *n*
    nodes: rows = isqrt(n), cols = ceil(n / rows)."""
    rows = max(1, math.isqrt(n))
    return (rows, math.ceil(n / rows))


# ---------------------------------------------------------------------------
# protocol-level availability under write ratio w
# ---------------------------------------------------------------------------


def dqvl_availability(
    w: float,
    n_iqs: int,
    n_oqs: int,
    p: float,
    oqs_read_size: int = 1,
    iqs_read_size: Optional[int] = None,
    iqs_write_size: Optional[int] = None,
) -> float:
    """The paper's DQVL formula.

    * ``av_orq`` — an OQS read quorum exists: any ``oqs_read_size`` of
      the ``n_oqs`` nodes (read-one by default: ``1 - p^n``);
    * ``av_irq`` / ``av_iwq`` — IQS read/write quorums (majorities by
      default).

    Reads need an OQS read quorum and (pessimistically — the paper notes
    valid leases can mask short failures) an IQS read quorum for
    renewals; writes need IQS read + write quorums (the logical-clock
    read and the write itself).  Invalidation of the OQS never blocks a
    write indefinitely: expired volume leases substitute for
    unreachable OQS nodes — hence no ``av`` term for the OQS write
    quorum, per the paper.
    """
    _check_inputs(w, p)
    majority = n_iqs // 2 + 1
    ir = majority if iqs_read_size is None else iqs_read_size
    iw = majority if iqs_write_size is None else iqs_write_size
    av_orq = binomial_tail(n_oqs, oqs_read_size, 1.0 - p)
    av_irq = majority_availability(n_iqs, ir, p)
    av_iwq = majority_availability(n_iqs, iw, p)
    return (1.0 - w) * min(av_orq, av_irq) + w * min(av_iwq, av_irq)


def dqvl_system_availability(w, iqs_system, oqs_system, p: float) -> float:
    """The paper's DQVL formula generalised to arbitrary quorum systems.

    Same min-composition as :func:`dqvl_availability` — reads need an
    OQS read quorum plus (pessimistically) an IQS read quorum for
    renewals; writes need IQS read + write quorums; the OQS write
    quorum never blocks a write indefinitely (expired volume leases
    substitute) — but the per-quorum terms come from the *systems'* own
    closed forms, so grid and weighted shapes are scored exactly.  This
    is the availability axis of the ``repro tune`` scoring model
    (DESIGN.md §17).
    """
    _check_inputs(w, p)
    av_orq = oqs_system.read_availability(p)
    av_irq = iqs_system.read_availability(p)
    av_iwq = iqs_system.write_availability(p)
    return (1.0 - w) * min(av_orq, av_irq) + w * min(av_iwq, av_irq)


def majority_protocol_availability(w: float, n: int, p: float) -> float:
    """Majority quorum: both reads and writes need a majority."""
    _check_inputs(w, p)
    av = majority_availability(n, n // 2 + 1, p)
    return (1.0 - w) * av + w * av


def grid_protocol_availability(
    w: float, n: int, p: float, rows: Optional[int] = None, cols: Optional[int] = None
) -> float:
    """Grid quorum protocol over a near-square (possibly ragged) grid."""
    _check_inputs(w, p)
    grid = _grid_for(n, rows, cols)
    return (1.0 - w) * grid.read_availability(p) + w * grid.write_availability(p)


def rowa_availability(w: float, n: int, p: float) -> float:
    """ROWA: reads need any one node, writes need all of them."""
    _check_inputs(w, p)
    return (1.0 - w) * (1.0 - p**n) + w * (1.0 - p) ** n


def rowa_async_availability(w: float, n: int, p: float, allow_stale: bool = True) -> float:
    """ROWA-Async, in the paper's two variants.

    * ``allow_stale=True`` — any node can serve either operation, stale
      or not: ``av = 1 - p^n``.  Excellent, but not regular semantics.
    * ``allow_stale=False`` — the fair comparison (Yu & Vahdat): a read
      that would return stale data is rejected.  Immediately after a
      write, only the accepting replica is guaranteed current, so a read
      needs *that* node alive (``1 - p``); writes still complete at any
      live node.  This is why the no-stale variant collapses to roughly
      ``1 - p`` — "several orders of magnitude worse" than quorums.
    """
    _check_inputs(w, p)
    any_node = 1.0 - p**n
    if allow_stale:
        return (1.0 - w) * any_node + w * any_node
    return (1.0 - w) * (1.0 - p) + w * any_node


def primary_backup_availability(w: float, n: int, p: float) -> float:
    """Primary/backup without failover: everything needs the primary."""
    _check_inputs(w, p)
    return 1.0 - p


def protocol_unavailability(protocol: str, w: float, n: int, p: float, **kwargs) -> float:
    """Unavailability (``1 - av``) dispatcher used by the Figure 8 bench.

    ``n`` is the number of replicas; DQVL uses it for both IQS and OQS
    sizes, as in the figure ("the number of replicas ... in both IQS and
    OQS").
    """
    table: Dict[str, float] = {
        "dqvl": lambda: dqvl_availability(w, n_iqs=n, n_oqs=n, p=p, **kwargs),
        "majority": lambda: majority_protocol_availability(w, n, p),
        "grid": lambda: grid_protocol_availability(w, n, p, **kwargs),
        "rowa": lambda: rowa_availability(w, n, p),
        "rowa_async": lambda: rowa_async_availability(w, n, p, allow_stale=True),
        "rowa_async_no_stale": lambda: rowa_async_availability(w, n, p, allow_stale=False),
        "primary_backup": lambda: primary_backup_availability(w, n, p),
    }
    if protocol not in table:
        raise KeyError(f"unknown protocol {protocol!r}; choose from {sorted(table)}")
    availability = table[protocol]()
    return max(0.0, 1.0 - availability)
