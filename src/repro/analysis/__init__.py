"""Analytical models: availability (Fig 8), overhead (Fig 9), latency."""

from .availability import (
    default_grid_shape,
    dqvl_availability,
    dqvl_system_availability,
    grid_protocol_availability,
    grid_read_availability,
    grid_write_availability,
    majority_availability,
    majority_protocol_availability,
    primary_backup_availability,
    protocol_unavailability,
    rowa_async_availability,
    rowa_availability,
)
from .overhead import (
    dqvl_messages_per_request,
    grid_messages_per_request,
    majority_messages_per_request,
    primary_backup_messages_per_request,
    protocol_messages_per_request,
    rowa_async_messages_per_request,
    rowa_messages_per_request,
)
from .response_time import DelayParams, expected_latency, expected_mean_latency
from .sizes import VALUE_BEARING_KINDS, EdgeServiceSizeModel

__all__ = [
    "majority_availability",
    "grid_read_availability",
    "grid_write_availability",
    "default_grid_shape",
    "dqvl_availability",
    "dqvl_system_availability",
    "majority_protocol_availability",
    "grid_protocol_availability",
    "rowa_availability",
    "rowa_async_availability",
    "primary_backup_availability",
    "protocol_unavailability",
    "dqvl_messages_per_request",
    "majority_messages_per_request",
    "grid_messages_per_request",
    "rowa_messages_per_request",
    "rowa_async_messages_per_request",
    "primary_backup_messages_per_request",
    "protocol_messages_per_request",
    "DelayParams",
    "expected_latency",
    "expected_mean_latency",
    "EdgeServiceSizeModel",
    "VALUE_BEARING_KINDS",
]
