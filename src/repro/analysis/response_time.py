"""Analytical response-time model for the edge topology (Figures 6-7).

These closed forms predict the *network* component of each protocol's
mean response time under the paper's delay parameters.  They serve two
purposes: cross-checking the simulator (tests assert simulation means
approach the model) and giving EXPERIMENTS.md an interpretable account
of every curve.

Model assumptions (matching the simulation's *direct* mode, which is the
paper's measurement setup):

* constant one-way delays: ``lan`` (app ↔ closest edge server),
  ``cwan`` (app ↔ every other edge server), ``swan`` (edge ↔ edge);
  zero processing time;
* the service client runs on the application client's machine, so a
  quorum round from the client costs a ``cwan`` round trip whenever the
  quorum includes any non-closest replica (it always does for majority
  quorums of more than one), and a ``lan`` round trip when a single
  co-located... closest replica suffices;
* steady state for DQVL under a per-client object with proactive lease
  renewal: reads at the object's usual replica are hits; reads at a
  *different* replica (redirected requests) miss and the replica renews
  from the IQS over server-to-server links; writes pay the two IQS
  rounds plus, when a read preceded them, a server-side invalidation
  round.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DelayParams", "expected_latency", "expected_mean_latency"]


@dataclass(frozen=True)
class DelayParams:
    """One-way delays in milliseconds (defaults: the paper's)."""

    lan: float = 8.0
    cwan: float = 86.0
    swan: float = 80.0

    @property
    def lan_rt(self) -> float:
        return 2 * self.lan

    @property
    def cwan_rt(self) -> float:
        return 2 * self.cwan

    @property
    def swan_rt(self) -> float:
        return 2 * self.swan


def _hop(local: bool, d: DelayParams) -> float:
    """App-client round trip to the chosen front end."""
    return d.lan_rt if local else d.cwan_rt


def expected_latency(
    protocol: str,
    op: str,
    d: DelayParams = DelayParams(),
    local: bool = True,
    primary_local: bool = False,
    miss: bool = False,
    write_through: bool = True,
) -> float:
    """Expected response time of one operation.

    Parameters
    ----------
    protocol:
        ``dqvl`` | ``majority`` | ``primary_backup`` | ``rowa`` |
        ``rowa_async``.
    op:
        ``read`` | ``write``.
    local:
        Whether the request reached the client's home front end
        (the access-locality knob of Figure 7).
    primary_local:
        Primary/backup only: is the primary co-located with the chosen
        front end?
    miss:
        DQVL reads only: charge the renewal round (first read after a
        write, or at a freshly visited replica).
    write_through:
        DQVL writes only: charge the invalidation round (a read renewed
        callbacks since the last write).
    """
    hop = _hop(local, d)
    if protocol == "rowa_async":
        return hop  # the chosen replica serves both ops
    if protocol == "rowa":
        # reads: the chosen replica; writes: all replicas in parallel,
        # dominated by the farthest (cwan) round trip.
        return hop if op == "read" else d.cwan_rt
    if protocol == "primary_backup":
        return d.lan_rt if primary_local else d.cwan_rt
    if protocol == "majority":
        # Any majority includes distant replicas, so each phase costs a
        # client-WAN round trip — for every locality value (flat).
        return d.cwan_rt if op == "read" else 2 * d.cwan_rt
    if protocol in ("dqvl", "basic_dq"):
        if op == "read":
            # a miss makes the contacted OQS replica renew from an IQS
            # read quorum over server-to-server links
            return hop + (d.swan_rt if miss else 0.0)
        cost = 2 * d.cwan_rt  # lc read + quorum write, both client-WAN
        if write_through:
            cost += d.swan_rt  # server-side invalidation round
        return cost
    raise KeyError(f"unknown protocol {protocol!r}")


def expected_mean_latency(
    protocol: str,
    w: float,
    locality: float = 1.0,
    d: DelayParams = DelayParams(),
    primary_local_fraction: float = 1.0 / 3.0,
    n_distant: int = 8,
) -> float:
    """Workload-mean response time — the full Figure 6(b)/7(b) curves.

    Mixes :func:`expected_latency` over the operation and event
    probabilities of the steady-state single-client-per-object model:

    * an operation is a write with probability ``w`` and lands on the
      home replica with probability ``locality``;
    * a DQVL read at the home replica misses when any write intervened
      since the home replica was last validated — probability ``w``
      (writes invalidate everywhere; redirected *reads* leave the home
      leases intact);
    * a DQVL read at one of the ``n_distant`` distant replicas misses
      when any write occurred since that replica's last visit; the
      expected revisit gap is ``n_distant / (1 - locality)`` operations,
      so the miss probability is ``1 - (1-w) ** gap``;
    * a DQVL write goes through (pays the invalidation round) when a
      read preceded it: probability ``1 - w``;
    * the primary/backup primary is co-located with one of the
      ``1/primary_local_fraction`` clients' home edges.

    This is the model the simulation cross-check tests compare against;
    agreement within a few ms validates both.
    """
    if not 0.0 <= w <= 1.0:
        raise ValueError("write ratio must be in [0, 1]")
    if not 0.0 <= locality <= 1.0:
        raise ValueError("locality must be in [0, 1]")

    if protocol == "primary_backup":
        op = (
            primary_local_fraction * expected_latency(protocol, "read", d, primary_local=True)
            + (1 - primary_local_fraction)
            * expected_latency(protocol, "read", d, primary_local=False)
        )
        return op  # reads and writes cost the same here

    if protocol == "majority":
        read = expected_latency(protocol, "read", d)
        write = expected_latency(protocol, "write", d)
        return (1 - w) * read + w * write

    if protocol == "rowa":
        read = (
            locality * expected_latency(protocol, "read", d, local=True)
            + (1 - locality) * expected_latency(protocol, "read", d, local=False)
        )
        write = expected_latency(protocol, "write", d)
        return (1 - w) * read + w * write

    if protocol == "rowa_async":
        op = (
            locality * expected_latency(protocol, "read", d, local=True)
            + (1 - locality) * expected_latency(protocol, "read", d, local=False)
        )
        return op

    if protocol in ("dqvl", "basic_dq"):
        home_miss = w
        read_home = (
            (1 - home_miss) * expected_latency(protocol, "read", d, local=True, miss=False)
            + home_miss * expected_latency(protocol, "read", d, local=True, miss=True)
        )
        if locality < 1.0 and n_distant > 0:
            gap = n_distant / (1 - locality)
            away_miss = 1.0 - (1.0 - w) ** gap if w < 1.0 else 1.0
        else:
            away_miss = 1.0
        read_away = (
            (1 - away_miss) * expected_latency(protocol, "read", d, local=False, miss=False)
            + away_miss * expected_latency(protocol, "read", d, local=False, miss=True)
        )
        read = locality * read_home + (1 - locality) * read_away
        through = 1 - w
        write = (
            through * expected_latency(protocol, "write", d, write_through=True)
            + (1 - through) * expected_latency(protocol, "write", d, write_through=False)
        )
        return (1 - w) * read + w * write

    raise KeyError(f"unknown protocol {protocol!r}")
