"""Consistency validation: histories, semantics checkers, staleness.

Used by integration tests to verify that DQVL (and the strong
baselines) provide regular semantics, and to demonstrate — and
quantify — ROWA-Async's violations.
"""

from .history import History, Op
from .sessions import (
    SessionViolation,
    check_monotonic_reads,
    check_read_your_writes,
    check_session_guarantees,
)
from .regular import (
    StalenessReport,
    Violation,
    check_atomic,
    check_regular,
    staleness_report,
)

__all__ = [
    "History",
    "Op",
    "Violation",
    "check_regular",
    "check_atomic",
    "staleness_report",
    "StalenessReport",
    "SessionViolation",
    "check_read_your_writes",
    "check_monotonic_reads",
    "check_session_guarantees",
]
