"""Regular- and atomic-semantics checkers over recorded histories.

The paper's guarantee (Section 2, following Lamport): a read *r* that is
not concurrent with any write returns the value of the **latest write
that completed before r began**; a read concurrent with writes may
additionally return the value of **any concurrent write**.

Among multiple completed writes, "latest" is resolved the way the
paper's correctness argument resolves it: by **logical clock** order
(the protocol's total write order).  For non-overlapping writes the
logical-clock order and the real-time order agree, so this matches the
intuitive reading of the definition as well.

Failed (rejected / timed-out) writes have indeterminate effect — they
may have reached some replicas — so the checker treats them like writes
concurrent with everything that starts after their invocation.

:func:`check_atomic` implements the stricter single-register
linearizability condition the paper mentions as future work, so the
cost/benefit of upgrading DQVL's semantics can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..types import ZERO_LC, LogicalClock
from .history import READ, WRITE, History, Op

__all__ = ["Violation", "check_regular", "check_atomic", "staleness_report", "StalenessReport"]


@dataclass
class Violation:
    """One read that no regular (or atomic) explanation covers."""

    read: Op
    reason: str
    legal_clocks: List[LogicalClock]

    def __str__(self) -> str:
        legal = ", ".join(str(lc) for lc in self.legal_clocks) or "<initial>"
        return (
            f"{self.reason}: read {self.read.key}={self.read.value!r}@{self.read.lc} "
            f"at [{self.read.start:.1f},{self.read.end:.1f}] by {self.read.client}; "
            f"legal clocks: {legal}"
        )


def _legal_writes_regular(read: Op, writes: List[Op]) -> List[Op]:
    """The writes a regular register may return for *read*: the latest
    completed before it, every overlapping completed write, and every
    failed write invoked before it ended (forever in doubt)."""
    completed_before = [
        w for w in writes if w.ok and w.end <= read.start
    ]
    legal = [
        w
        for w in writes
        if (w.ok and w.overlaps(read))
        or (not w.ok and w.start < read.end)  # failed writes: forever in doubt
    ]
    if completed_before:
        legal.insert(0, max(completed_before, key=lambda w: w.lc))
    return legal


def _legal_clocks_regular(read: Op, writes: List[Op]) -> List[LogicalClock]:
    """The clocks of the legal writes (ZERO_LC = the initial value)."""
    clocks = [w.lc for w in _legal_writes_regular(read, writes)]
    if not any(w.ok and w.end <= read.start for w in writes):
        clocks.insert(0, ZERO_LC)  # no completed predecessor: initial legal
    return clocks


def check_regular(history: History) -> List[Violation]:
    """All regular-semantics violations in *history* (empty = consistent).

    Checked independently per key — the register abstraction is
    per-object, as in the paper.

    A read is explained by a legal write's **clock or value**.  The
    clock is the precise identity, but it cannot always be matched:

    * a failed write usually records no clock (the client gave up before
      learning it), yet its value may surface later stamped with
      whatever clock a server assigned;
    * a non-idempotent retry (primary/backup assigns a fresh clock per
      arriving request) can apply one logical write under several
      clocks, and a read may observe an application other than the one
      the writer ultimately heard about.

    In both cases the value — unique per operation in every workload
    here — identifies the write, and the paper's guarantee is stated
    over values.

    Degraded reads (a front end serving its remembered value while the
    storage path is unreachable) are excluded: their contract is the
    explicit staleness bound they carry, not regularity.  The chaos
    campaign checks that bound separately.
    """
    violations: List[Violation] = []
    for key in history.keys():
        writes = history.writes(key)
        for read in history.reads(key):
            if not read.ok or read.degraded:
                continue
            legal = _legal_writes_regular(read, writes)
            clocks = _legal_clocks_regular(read, writes)
            if read.lc in clocks:
                continue
            if read.value is not None and any(
                w.value == read.value for w in legal
            ):
                continue
            violations.append(
                Violation(read, "regular-semantics violation", clocks)
            )
    return violations


def check_atomic(history: History) -> List[Violation]:
    """Atomic (linearizable) register check, per key.

    In addition to regularity, atomicity forbids *new-old inversions*:
    if read r1 completes before read r2 begins, r2 must not return an
    older write than r1.  This simple interval-order check is sound for
    histories whose write clocks grow along real time (true for every
    protocol in this repository) — it reports exactly the anomalies that
    distinguish regular from atomic behaviour.
    """
    violations = check_regular(history)
    for key in history.keys():
        reads = sorted(
            (r for r in history.reads(key) if r.ok and not r.degraded),
            key=lambda r: r.start,
        )
        best_so_far: Optional[Op] = None
        for read in reads:
            if best_so_far is not None and read.start >= best_so_far.end:
                if read.lc < best_so_far.lc:
                    violations.append(
                        Violation(
                            read,
                            "new-old inversion (atomicity violation)",
                            [best_so_far.lc],
                        )
                    )
                    continue
            if best_so_far is None or (
                read.lc > best_so_far.lc
                or (read.lc == best_so_far.lc and read.end < best_so_far.end)
            ):
                best_so_far = read
    return violations


@dataclass
class StalenessReport:
    """How stale reads were, aggregated over a history."""

    total_reads: int
    stale_reads: int
    max_staleness_ms: float
    mean_version_lag: float

    @property
    def stale_fraction(self) -> float:
        return self.stale_reads / self.total_reads if self.total_reads else 0.0


def staleness_report(history: History) -> StalenessReport:
    """Quantify staleness: a read is *stale* when a write with a higher
    clock completed before the read began (the read missed it).

    ``max_staleness_ms`` is the largest gap between a stale read's start
    and the completion of the newest write it missed; ROWA-Async has no
    bound on this value, which is the paper's core criticism of it.

    Runs as a sweep in read-start order per key: completed writes are
    merged in by end time while a sorted list of their clocks supports
    counting how many the read missed — ``O((R + W) log W)`` overall
    instead of the quadratic naive scan.
    """
    import bisect

    total = 0
    stale = 0
    max_staleness = 0.0
    lag_sum = 0
    lag_count = 0
    for key in history.keys():
        writes = sorted(
            (w for w in history.writes(key) if w.ok), key=lambda w: w.end
        )
        reads = sorted(
            (r for r in history.reads(key) if r.ok and not r.degraded),
            key=lambda r: r.start,
        )
        completed_clocks: List = []  # sorted clocks of completed writes
        newest: Optional[Op] = None  # completed write with the max clock
        wi = 0
        for read in reads:
            while wi < len(writes) and writes[wi].end <= read.start:
                w = writes[wi]
                bisect.insort(completed_clocks, w.lc)
                if newest is None or w.lc > newest.lc:
                    newest = w
                wi += 1
            total += 1
            lag_count += 1
            if newest is not None and newest.lc > read.lc:
                stale += 1
                max_staleness = max(max_staleness, read.start - newest.end)
                lag_sum += len(completed_clocks) - bisect.bisect_right(
                    completed_clocks, read.lc
                )
    mean_lag = lag_sum / lag_count if lag_count else 0.0
    return StalenessReport(
        total_reads=total,
        stale_reads=stale,
        max_staleness_ms=max_staleness,
        mean_version_lag=mean_lag,
    )
