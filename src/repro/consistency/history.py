"""Operation histories.

A :class:`History` records every client operation as an interval
(invocation time → response time) plus its value and logical clock.
The checkers in :mod:`repro.consistency.regular` operate on these
records, and the harness's metrics are derived from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..types import ZERO_LC, LogicalClock, ReadResult, WriteResult

__all__ = ["Op", "History"]

READ = "read"
WRITE = "write"


@dataclass
class Op:
    """One completed (or failed) client operation."""

    kind: str  # "read" | "write"
    key: str
    value: object
    lc: LogicalClock
    start: float
    end: float
    client: str = ""
    ok: bool = True
    #: protocol-specific detail (e.g. DQVL hit flag), for metrics only
    hit: Optional[bool] = None
    #: replica that served the operation, when meaningful
    server: Optional[str] = None
    #: degraded read: a front end served a remembered local value while
    #: its storage path was unreachable.  Regularity is not claimed, so
    #: the checkers skip these; the chaos availability report counts
    #: them separately and checks staleness_ms <= staleness_bound_ms.
    degraded: bool = False
    staleness_ms: Optional[float] = None
    staleness_bound_ms: Optional[float] = None

    @property
    def latency(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Op") -> bool:
        """Do the two operation intervals overlap in real time?"""
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "" if self.ok else " FAILED"
        return (
            f"<{self.kind} {self.key}={self.value!r}@{self.lc} "
            f"[{self.start:.1f},{self.end:.1f}] by {self.client}{status}>"
        )


class History:
    """An append-only log of operations across all clients."""

    def __init__(self) -> None:
        self.ops: List[Op] = []

    # -- recording ----------------------------------------------------------

    def record_read(self, result: ReadResult, ok: bool = True) -> Op:
        op = Op(
            kind=READ,
            key=result.key,
            value=result.value,
            lc=result.lc,
            start=result.start_time,
            end=result.end_time,
            client=result.client,
            ok=ok,
            hit=result.hit,
            server=result.server,
            degraded=getattr(result, "degraded", False),
            staleness_ms=getattr(result, "staleness_ms", None),
            staleness_bound_ms=getattr(result, "staleness_bound_ms", None),
        )
        self.ops.append(op)
        return op

    def record_write(self, result: WriteResult, ok: bool = True) -> Op:
        op = Op(
            kind=WRITE,
            key=result.key,
            value=result.value,
            lc=result.lc,
            start=result.start_time,
            end=result.end_time,
            client=result.client,
            ok=ok,
        )
        self.ops.append(op)
        return op

    def record_failure(self, kind: str, key: str, start: float, end: float,
                       client: str, value: object = None) -> Op:
        """Record a rejected/timed-out operation (counted as unavailable).

        For writes, pass the *attempted* value: a failed write may still
        have reached some replicas, and the checker can then recognise
        its value when a later read returns it (the client never learned
        the write's clock, so the value is the only identity it has).
        """
        op = Op(kind=kind, key=key, value=value, lc=ZERO_LC,
                start=start, end=end, client=client, ok=False)
        self.ops.append(op)
        return op

    # -- queries -------------------------------------------------------------

    def keys(self) -> List[str]:
        return sorted({op.key for op in self.ops})

    def of_key(self, key: str) -> List[Op]:
        return [op for op in self.ops if op.key == key]

    def reads(self, key: Optional[str] = None) -> List[Op]:
        return [
            op for op in self.ops
            if op.kind == READ and (key is None or op.key == key)
        ]

    def writes(self, key: Optional[str] = None) -> List[Op]:
        return [
            op for op in self.ops
            if op.kind == WRITE and (key is None or op.key == key)
        ]

    def successful(self) -> Iterable[Op]:
        return (op for op in self.ops if op.ok)

    def failures(self) -> List[Op]:
        return [op for op in self.ops if not op.ok]

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)
