"""Session guarantees: client-centric consistency checks.

Regular semantics is a *global* property.  Edge-service users experience
consistency per **session** — the sequence of operations one client
issues — and the classic session guarantees (Terry et al., the Bayou
lineage the paper's ROWA-Async baseline comes from) decompose it:

* **read your writes** — a read returns the client's own latest
  preceding write, or something newer;
* **monotonic reads** — a client's successive reads never go backwards.

Regular semantics implies both for non-concurrent operations, so DQVL
and the strong baselines satisfy them by construction; ROWA-Async
violates both the moment a client's session is redirected to a replica
its writes have not reached — the user-visible form of the paper's
criticism, and the check travel-agency bugs are made of.

Clock comparisons use the protocols' logical clocks, which all grow
along each client's session (every client here issues operations
sequentially).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..types import ZERO_LC, LogicalClock
from .history import READ, WRITE, History, Op

__all__ = [
    "SessionViolation",
    "check_read_your_writes",
    "check_monotonic_reads",
    "check_session_guarantees",
]


@dataclass
class SessionViolation:
    """One read that broke a session guarantee."""

    guarantee: str  # "read-your-writes" | "monotonic-reads"
    client: str
    read: Op
    expected_at_least: LogicalClock

    def __str__(self) -> str:
        return (
            f"{self.guarantee} violation for client {self.client}: read "
            f"{self.read.key}={self.read.value!r}@{self.read.lc} at "
            f"[{self.read.start:.1f},{self.read.end:.1f}] but the session "
            f"had already seen/written {self.expected_at_least}"
        )


def _sessions(history: History) -> Dict[str, List[Op]]:
    """Operations grouped by client, in invocation order."""
    sessions: Dict[str, List[Op]] = {}
    for op in sorted(history.ops, key=lambda o: (o.start, o.end)):
        if op.ok:
            sessions.setdefault(op.client, []).append(op)
    return sessions


def check_read_your_writes(history: History) -> List[SessionViolation]:
    """Each client's reads return at least its own latest prior write.

    Checked per key within each client's session, using the write's
    logical clock as the floor the read must reach.
    """
    violations: List[SessionViolation] = []
    for client, ops in _sessions(history).items():
        last_write: Dict[str, LogicalClock] = {}
        for op in ops:
            if op.kind == WRITE:
                key_floor = last_write.get(op.key, ZERO_LC)
                last_write[op.key] = max(key_floor, op.lc)
            else:
                floor = last_write.get(op.key, ZERO_LC)
                if op.lc < floor:
                    violations.append(
                        SessionViolation("read-your-writes", client, op, floor)
                    )
    return violations


def check_monotonic_reads(history: History) -> List[SessionViolation]:
    """Each client's successive reads of a key never regress."""
    violations: List[SessionViolation] = []
    for client, ops in _sessions(history).items():
        high_water: Dict[str, LogicalClock] = {}
        for op in ops:
            if op.kind != READ:
                continue
            floor = high_water.get(op.key, ZERO_LC)
            if op.lc < floor:
                violations.append(
                    SessionViolation("monotonic-reads", client, op, floor)
                )
            else:
                high_water[op.key] = op.lc
    return violations


def check_session_guarantees(history: History) -> List[SessionViolation]:
    """Both guarantees together (the union of violations)."""
    return check_read_your_writes(history) + check_monotonic_reads(history)
