"""Cluster builders: wire up a dual-quorum deployment in one call.

The builders create the IQS servers, the OQS servers, and a client
factory, all attached to a caller-supplied simulator and network (so the
caller controls topology, delays, and fault injection).

The default configuration matches the paper's recommendation: the OQS
spans the given read-side nodes with **read quorum size 1** (reads are
local) and write quorum = all OQS nodes; the IQS is a **majority quorum
system** over the write-side nodes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..quorum.spec import DEFAULT_IQS_SPEC, DEFAULT_OQS_SPEC
from ..quorum.system import QuorumSystem
from ..sim.clock import DriftingClock
from ..sim.kernel import Simulator
from ..sim.network import Network
from ..sim.trace import NULL_TRACER
from .basic_dq import BasicIqsNode, BasicOqsNode
from .config import DqvlConfig
from .dqvl import DqvlClient, DqvlIqsNode, DqvlOqsNode

__all__ = ["DqvlCluster", "build_dqvl_cluster", "build_basic_dq_cluster"]


@dataclass
class DqvlCluster:
    """Handles to a wired-up dual-quorum deployment."""

    sim: Simulator
    network: Network
    config: DqvlConfig
    iqs_system: QuorumSystem
    oqs_system: QuorumSystem
    iqs_nodes: List
    oqs_nodes: List
    _client_factory: Callable[[str], DqvlClient] = field(repr=False, default=None)

    def client(self, node_id: str, prefer_oqs=None, prefer_iqs=None) -> DqvlClient:
        """Create a service client.

        ``prefer_oqs``/``prefer_iqs`` pin the replica included in every
        sampled quorum — typically the client's co-located OQS node.
        """
        return self._client_factory(node_id, prefer_oqs, prefer_iqs)

    def iqs_node(self, node_id: str):
        return next(n for n in self.iqs_nodes if n.node_id == node_id)

    def oqs_node(self, node_id: str):
        return next(n for n in self.oqs_nodes if n.node_id == node_id)

    # -- aggregate statistics (used by the harness) -------------------------

    @property
    def total_read_hits(self) -> int:
        return sum(n.read_hits for n in self.oqs_nodes)

    @property
    def total_read_misses(self) -> int:
        return sum(n.read_misses for n in self.oqs_nodes)

    @property
    def total_writes_suppressed(self) -> int:
        return sum(n.writes_suppressed for n in self.iqs_nodes)

    @property
    def total_writes_through(self) -> int:
        return sum(n.writes_through for n in self.iqs_nodes)


def _check_owq_safety(oqs_system: QuorumSystem) -> None:
    """Warn when OQS write quorums are proper subsets of the node set.

    Each IQS server independently invalidates one OQS write quorum; when
    those quorums can differ between servers, regular semantics is not
    guaranteed (DESIGN.md §7).  The full-set write quorum — implied by
    the paper's recommended read-one OQS — is always safe.
    """
    if oqs_system.write_quorum_size < oqs_system.size:
        warnings.warn(
            "OQS write quorums smaller than the full OQS node set allow "
            "different IQS servers to invalidate different quorums, which "
            "can violate regular semantics; see DESIGN.md. Use write "
            "quorum = all OQS nodes (e.g. RowaQuorumSystem) unless you "
            "know what you are doing.",
            stacklevel=3,
        )


def _resolve_systems(
    config: DqvlConfig,
    iqs_ids: Sequence[str],
    oqs_ids: Sequence[str],
    iqs_system: Optional[QuorumSystem],
    oqs_system: Optional[QuorumSystem],
):
    """Bind the config's quorum specs to the node ids.

    Explicit ``iqs_system``/``oqs_system`` objects win over specs; unset
    specs fall back to the paper's defaults (majority IQS, read-one/
    write-all OQS).  All four paths go through
    :meth:`~repro.quorum.spec.QuorumSpec.build`, the single quorum
    construction point.
    """
    iqs_system = iqs_system or (config.iqs_spec or DEFAULT_IQS_SPEC).build(iqs_ids)
    oqs_system = oqs_system or (config.oqs_spec or DEFAULT_OQS_SPEC).build(oqs_ids)
    _check_owq_safety(oqs_system)
    return iqs_system, oqs_system


def build_dqvl_cluster(
    sim: Simulator,
    network: Network,
    iqs_ids: Sequence[str],
    oqs_ids: Sequence[str],
    config: Optional[DqvlConfig] = None,
    iqs_system: Optional[QuorumSystem] = None,
    oqs_system: Optional[QuorumSystem] = None,
    clocks: Optional[Dict[str, DriftingClock]] = None,
    tracer=NULL_TRACER,
) -> DqvlCluster:
    """Build a DQVL deployment.

    Parameters
    ----------
    iqs_ids / oqs_ids:
        Node ids for the two quorum systems.  They may overlap logically
        (an edge server hosting both roles) but each id is one simulated
        process; co-location is modelled with zero-delay network links.
    iqs_system / oqs_system:
        Override the quorum constructions outright; otherwise the
        config's ``iqs_spec``/``oqs_spec`` decide (defaults: majority
        IQS, read-one/write-all OQS).
    clocks:
        Optional per-node drifting clocks (keyed by node id).
    """
    config = config or DqvlConfig()
    iqs_system, oqs_system = _resolve_systems(
        config, iqs_ids, oqs_ids, iqs_system, oqs_system
    )
    clocks = clocks or {}

    iqs_nodes = [
        DqvlIqsNode(
            sim, network, node_id, oqs_system, config,
            clock=clocks.get(node_id), tracer=tracer,
        )
        for node_id in iqs_ids
    ]
    oqs_nodes = [
        DqvlOqsNode(
            sim, network, node_id, iqs_system, config,
            clock=clocks.get(node_id), tracer=tracer,
        )
        for node_id in oqs_ids
    ]

    def client_factory(node_id: str, prefer_oqs=None, prefer_iqs=None) -> DqvlClient:
        return DqvlClient(
            sim, network, node_id, iqs_system, oqs_system, config,
            clock=clocks.get(node_id), tracer=tracer,
            prefer_oqs=prefer_oqs, prefer_iqs=prefer_iqs,
        )

    return DqvlCluster(
        sim=sim,
        network=network,
        config=config,
        iqs_system=iqs_system,
        oqs_system=oqs_system,
        iqs_nodes=iqs_nodes,
        oqs_nodes=oqs_nodes,
        _client_factory=client_factory,
    )


def build_basic_dq_cluster(
    sim: Simulator,
    network: Network,
    iqs_ids: Sequence[str],
    oqs_ids: Sequence[str],
    config: Optional[DqvlConfig] = None,
    iqs_system: Optional[QuorumSystem] = None,
    oqs_system: Optional[QuorumSystem] = None,
    clocks: Optional[Dict[str, DriftingClock]] = None,
    tracer=NULL_TRACER,
) -> DqvlCluster:
    """Build a basic (lease-free) dual-quorum deployment (Section 3.1)."""
    config = config or DqvlConfig()
    iqs_system, oqs_system = _resolve_systems(
        config, iqs_ids, oqs_ids, iqs_system, oqs_system
    )
    clocks = clocks or {}

    iqs_nodes = [
        BasicIqsNode(
            sim, network, node_id, oqs_system, config,
            clock=clocks.get(node_id), tracer=tracer,
        )
        for node_id in iqs_ids
    ]
    oqs_nodes = [
        BasicOqsNode(
            sim, network, node_id, iqs_system, config,
            clock=clocks.get(node_id), tracer=tracer,
        )
        for node_id in oqs_ids
    ]

    def client_factory(node_id: str, prefer_oqs=None, prefer_iqs=None) -> DqvlClient:
        return DqvlClient(
            sim, network, node_id, iqs_system, oqs_system, config,
            clock=clocks.get(node_id), tracer=tracer,
            prefer_oqs=prefer_oqs, prefer_iqs=prefer_iqs,
        )

    return DqvlCluster(
        sim=sim,
        network=network,
        config=config,
        iqs_system=iqs_system,
        oqs_system=oqs_system,
        iqs_nodes=iqs_nodes,
        oqs_nodes=oqs_nodes,
        _client_factory=client_factory,
    )
