"""Volume-lease state machines.

This module holds the lease bookkeeping both sides of DQVL need
(Section 3.2 of the paper), factored out of the node classes so the
invariants can be unit- and property-tested in isolation:

* :class:`IqsLeaseTable` — what an IQS server i tracks about every OQS
  node j: per-volume lease expiry ``expires[v][j]``, the queue of
  **delayed invalidations** ``delayed[v][j]``, and the **epoch number**
  ``epoch[v][j]`` used to garbage-collect that queue;
* :class:`OqsLeaseView` — what an OQS node j tracks about every IQS
  server i: per-volume lease expiry and epoch, and per-object
  ``(epoch, logicalClock, valid)`` triples.

Clock-drift safety
------------------
Leases are granted for a nominal length ``L`` but the two sides book
them asymmetrically:

* the **holder** (OQS) records ``t0 + L * (1 - maxDrift)`` where ``t0``
  is its local send time of the renewal request — the paper's rule;
* the **granter** (IQS) records ``now + L * (1 + maxDrift)``.

The paper states only the holder-side correction.  With drift on *both*
clocks the holder-side correction alone is insufficient (a fast granter
clock paired with a slow holder clock lets the granter expire the lease
before the holder does, in real time); widening the granter's wait by
``(1 + maxDrift)`` restores the invariant that the granter never
considers a lease expired while the holder still considers it valid.
EXPERIMENTS.md and the property tests cover this corner.

Boundary semantics
------------------
At the exact expiry instant (``now == expires``, reachable whenever
``max_drift == 0``) the two sides deliberately disagree, each erring in
its own safe direction — the **asymmetric-conservative** boundary:

* the **granter** counts ``==`` as *unexpired*
  (:meth:`IqsLeaseTable.is_expired` and
  :meth:`ObjectLeaseTable.is_expired` use ``expires < now``): it keeps
  waiting for the holder, so a write can never complete while a holder
  could still legitimately serve the old version;
* the **holder** counts ``==`` as *expired*
  (:meth:`OqsLeaseView.volume_valid` uses ``expires > now``): it stops
  serving reads under the lease, so it never serves at an instant the
  granter might already have written off.

Both tie-breaks sacrifice one instant of availability, never safety.
The reverse assignment on either side would let a read at ``t ==
expires`` be served by a holder the granter simultaneously counts as
unable to read — exactly the regular-register violation DQVL's
Condition C exists to prevent.  ``tests/test_leases.py`` pins the
boundary at ``max_drift=0``.

Acknowledgement clocks are **inclusive** at equality: an ack carrying
logical clock ``lc`` means the holder has applied the invalidation
stamped ``lc`` itself, so :meth:`IqsLeaseTable.ack_delayed` clears
queued entries with ``pending <= lc`` and
:meth:`IqsLeaseTable.has_delayed` reports only strictly-unacknowledged
work (see the method docstrings for why the pair is consistent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..types import ZERO_LC, LogicalClock

__all__ = [
    "DelayedInval",
    "VolumeLeaseGrant",
    "IqsLeaseTable",
    "OqsLeaseView",
    "ObjectLeaseTable",
    "AdaptiveObjectLeasePolicy",
]


@dataclass(frozen=True)
class DelayedInval:
    """An invalidation withheld because the target's volume lease had
    expired; delivered when the target next renews the volume."""

    obj: str
    lc: LogicalClock


@dataclass(frozen=True)
class VolumeLeaseGrant:
    """The lease-bearing part of a volume renewal reply."""

    volume: str
    length_ms: float
    epoch: int
    delayed: Tuple[DelayedInval, ...]
    requestor_time: float


class IqsLeaseTable:
    """IQS-side per-(volume, OQS-node) lease state.

    Parameters
    ----------
    lease_length_ms:
        Nominal volume lease length ``L``.
    max_drift:
        System-wide clock drift bound ``maxDrift``.
    max_delayed:
        Queue bound: when a node's delayed-invalidation queue for a
        volume exceeds this, the epoch is advanced and the queue dropped
        (the paper's epoch-based garbage collection).
    """

    def __init__(
        self,
        lease_length_ms: float,
        max_drift: float = 0.0,
        max_delayed: int = 1000,
    ) -> None:
        if lease_length_ms <= 0:
            raise ValueError("lease_length_ms must be positive")
        if max_delayed < 1:
            raise ValueError("max_delayed must be at least 1")
        self.lease_length_ms = lease_length_ms
        self.max_drift = max_drift
        self.max_delayed = max_delayed
        # keyed by (volume, oqs_node)
        self._expires: Dict[Tuple[str, str], float] = {}
        self._epoch: Dict[Tuple[str, str], int] = {}
        self._delayed: Dict[Tuple[str, str], Dict[str, LogicalClock]] = {}
        self.epoch_bumps = 0

    # -- lease grants --------------------------------------------------------

    def grant(self, volume: str, node: str, now: float, requestor_time: float) -> VolumeLeaseGrant:
        """Process a volume renewal request from *node* at local time *now*.

        Returns the grant to send back (including the pending delayed
        invalidations, which are **not** cleared until acknowledged) and
        records the conservative granter-side expiry.
        """
        key = (volume, node)
        self._expires[key] = now + self.lease_length_ms * (1.0 + self.max_drift)
        delayed = tuple(
            DelayedInval(obj, lc)
            for obj, lc in sorted(self._delayed.get(key, {}).items())
        )
        return VolumeLeaseGrant(
            volume=volume,
            length_ms=self.lease_length_ms,
            epoch=self._epoch.get(key, 0),
            delayed=delayed,
            requestor_time=requestor_time,
        )

    def is_expired(self, volume: str, node: str, now: float) -> bool:
        """Granter-side check: may *node* still be reading under this lease?

        Strict ``expires < now``: at the exact boundary instant
        (``now == expires``) the granter still treats the lease as
        **live** and keeps blocking writes on the holder.  The holder
        makes the opposite call at the same instant
        (:meth:`OqsLeaseView.volume_valid` treats ``==`` as expired) —
        the asymmetric-conservative boundary documented in the module
        docstring.  Flipping this to ``<=`` would let a write complete
        at the same instant a drift-free holder may still serve the old
        version.
        """
        return self._expires.get((volume, node), float("-inf")) < now

    def expiry(self, volume: str, node: str) -> float:
        """Recorded expiry time (``-inf`` when never granted)."""
        return self._expires.get((volume, node), float("-inf"))

    # -- delayed invalidations --------------------------------------------------

    def enqueue_delayed(self, volume: str, node: str, obj: str, lc: LogicalClock) -> None:
        """Queue an invalidation for delivery at *node*'s next renewal.

        Only the highest logical clock per object is retained (an
        invalidation subsumes all older ones for the same object).  If the
        queue outgrows ``max_delayed``, the epoch advances instead — the
        holder will conservatively drop all object leases for the volume.
        """
        key = (volume, node)
        queue = self._delayed.setdefault(key, {})
        current = queue.get(obj, ZERO_LC)
        queue[obj] = max(current, lc)
        if len(queue) > self.max_delayed:
            self.bump_epoch(volume, node)

    def ack_delayed(self, volume: str, node: str, lc: LogicalClock) -> None:
        """Clear delayed invalidations covered by the holder's ack *lc*.

        Inclusive at equality (``pending <= lc``): the holder acks with
        the exact clock of a delayed invalidation it just applied from a
        renewal grant (PROTOCOL.md §6), so an ack at ``lc`` proves the
        entry stamped ``lc`` was delivered — dropping it is safe, and
        keeping it would make the queue leak its own acknowledgements.
        This is the same convention as the write path's *known invalid*
        classification ("acked an invalidation **covering** this
        clock", i.e. ``ack >= lc``, PROTOCOL.md §5): equality counts as
        covered on both sides of the exchange.
        """
        key = (volume, node)
        queue = self._delayed.get(key)
        if not queue:
            return
        for obj in [o for o, pending in queue.items() if pending <= lc]:
            del queue[obj]
        if not queue:
            del self._delayed[key]

    def delayed_count(self, volume: str, node: str) -> int:
        return len(self._delayed.get((volume, node), {}))

    def pending_delayed(self, volume: str, node: str) -> Dict[str, LogicalClock]:
        """A copy of the queue (tests and tracing)."""
        return dict(self._delayed.get((volume, node), {}))

    def has_delayed(self, volume: str, node: str, obj: str, lc: LogicalClock) -> bool:
        """Is an invalidation at least as new as *lc* queued for (node, obj)?

        Inclusive at equality (``pending >= lc``): a queued entry at
        exactly *lc* already subsumes the caller's invalidation, so the
        write path may skip enqueueing a duplicate.  Note the
        asymmetry of the *questions*, not the semantics: this asks
        about the **unacknowledged queue**, :meth:`ack_delayed` about
        **acknowledged delivery**.  An ack at ``lc`` removes the entry
        at ``lc`` *and* means the holder applied it, so this method
        correctly reporting "nothing queued" afterwards is consistent —
        the pre-ack and post-ack answers describe different states, not
        a contradiction.  The regression test
        ``tests/test_leases.py::test_ack_equality_contract`` locks the
        pair.
        """
        return self._delayed.get((volume, node), {}).get(obj, ZERO_LC) >= lc

    # -- epochs -------------------------------------------------------------------

    def epoch(self, volume: str, node: str) -> int:
        return self._epoch.get((volume, node), 0)

    def bump_epoch(self, volume: str, node: str) -> None:
        """Advance the epoch and drop the delayed queue (GC).

        After the bump, the next grant carries the new epoch number; the
        holder then treats every object lease under the volume as revoked,
        which is what makes dropping the queue safe.
        """
        key = (volume, node)
        self._epoch[key] = self._epoch.get(key, 0) + 1
        self._delayed.pop(key, None)
        self.epoch_bumps += 1


class AdaptiveObjectLeasePolicy:
    """Adaptive object-lease lengths (Duvvuri et al., the paper's [9]).

    Read-hot objects earn longer leases (fewer renewals); write-hot
    objects get shorter ones (less callback state and fewer
    invalidation round trips blocked on them):

    * on a renewal that arrives within *two* lease lengths of the
      previous one — i.e. before or soon after the last lease expired,
      which is how sustained interest manifests under lazy (miss-driven)
      renewal — the object's lease length doubles (capped at ``max_ms``);
    * on a write, it halves (floored at ``min_ms``).
    """

    def __init__(self, min_ms: float, max_ms: float, initial_ms: Optional[float] = None):
        if not 0 < min_ms <= max_ms:
            raise ValueError("need 0 < min_ms <= max_ms")
        self.min_ms = min_ms
        self.max_ms = max_ms
        self.initial_ms = initial_ms if initial_ms is not None else min_ms
        if not min_ms <= self.initial_ms <= max_ms:
            raise ValueError("initial_ms must lie within [min_ms, max_ms]")
        self._length: Dict[str, float] = {}
        self._last_renewal: Dict[str, float] = {}

    def length_for(self, obj: str) -> float:
        """Current lease length for *obj*."""
        return self._length.get(obj, self.initial_ms)

    def on_renewal(self, obj: str, now: float) -> float:
        """Record a renewal; returns the length to grant."""
        length = self.length_for(obj)
        last = self._last_renewal.get(obj)
        if last is not None and now - last <= 2.0 * length:
            length = min(length * 2.0, self.max_ms)
        self._length[obj] = length
        self._last_renewal[obj] = now
        return length

    def on_write(self, obj: str) -> None:
        """Record a write; shortens the object's future leases."""
        self._length[obj] = max(self.length_for(obj) / 2.0, self.min_ms)


class ObjectLeaseTable:
    """IQS-side finite object-lease expiry per (object, OQS node).

    With finite object leases an IQS server may classify an OQS node as
    unable to read an object simply because its *object* lease lapsed —
    no invalidation, no delayed-invalidation queue entry: the space and
    network optimisation of the paper's footnote 4.
    """

    def __init__(self, max_drift: float = 0.0) -> None:
        self.max_drift = max_drift
        self._expires: Dict[Tuple[str, str], float] = {}

    def grant(self, obj: str, node: str, now: float, length_ms: float) -> float:
        """Record a grant (granter-side conservative); returns length."""
        self._expires[(obj, node)] = now + length_ms * (1.0 + self.max_drift)
        return length_ms

    def is_expired(self, obj: str, node: str, now: float) -> bool:
        """Granter-side check: strict ``<``, so ``now == expires`` still
        counts as held — same asymmetric-conservative boundary as
        :meth:`IqsLeaseTable.is_expired` (module docstring); the holder
        side (:class:`OqsLeaseView` ``lease.expires > now``) drops the
        object at that instant."""
        return self._expires.get((obj, node), float("-inf")) < now

    def expiry(self, obj: str, node: str) -> float:
        return self._expires.get((obj, node), float("-inf"))


@dataclass
class _ObjectLease:
    """OQS-side per-(object, IQS-node) record."""

    epoch: int = 0
    lc: LogicalClock = ZERO_LC
    valid: bool = False
    #: holder-side object-lease expiry; +inf = infinite callback
    expires: float = float("inf")


class OqsLeaseView:
    """OQS-side view of leases granted by each IQS server.

    Tracks, per IQS node *i*: the volume lease (``expires``, ``epoch``)
    and per-object ``(epoch, logicalClock, valid)``.  The object-validity
    rule is the paper's: an object lease from *i* is usable only when its
    recorded epoch equals the volume's current epoch from *i* **and** the
    last event received for it from *i* was an update (not an
    invalidation) **and** the volume lease from *i* is unexpired.
    """

    def __init__(self, max_drift: float = 0.0) -> None:
        self.max_drift = max_drift
        self._vol_expires: Dict[Tuple[str, str], float] = {}
        self._vol_epoch: Dict[Tuple[str, str], int] = {}
        self._objects: Dict[Tuple[str, str], _ObjectLease] = {}

    # -- volume side -----------------------------------------------------------

    def apply_grant(self, iqs_node: str, grant: VolumeLeaseGrant) -> None:
        """Install a volume renewal reply from *iqs_node*.

        Expiry is computed from the echoed requestor send time with the
        holder-side drift correction; both expiry and epoch are merged
        with ``MAX`` so reordered replies cannot regress the state
        (matching the paper's ``processVLRenewReply``).
        """
        vkey = (grant.volume, iqs_node)
        conservative = grant.requestor_time + grant.length_ms * (1.0 - self.max_drift)
        self._vol_expires[vkey] = max(
            self._vol_expires.get(vkey, float("-inf")), conservative
        )
        self._vol_epoch[vkey] = max(self._vol_epoch.get(vkey, 0), grant.epoch)
        for inval in grant.delayed:
            self.apply_invalidation(iqs_node, inval.obj, inval.lc)

    def volume_valid(self, volume: str, iqs_node: str, now: float) -> bool:
        """Holder-side check: strict ``expires > now``, so at the exact
        boundary instant the holder treats its lease as **expired** and
        refuses to serve under it — while the granter, at the same
        instant, still counts it live and keeps blocking writes
        (:meth:`IqsLeaseTable.is_expired`).  Both sides thus err
        conservatively; see "Boundary semantics" in the module
        docstring."""
        return self._vol_expires.get((volume, iqs_node), float("-inf")) > now

    def volume_expiry(self, volume: str, iqs_node: str) -> float:
        return self._vol_expires.get((volume, iqs_node), float("-inf"))

    def volume_epoch(self, volume: str, iqs_node: str) -> int:
        return self._vol_epoch.get((volume, iqs_node), 0)

    # -- object side ---------------------------------------------------------------

    def apply_invalidation(self, iqs_node: str, obj: str, lc: LogicalClock) -> None:
        """Record an invalidation from *i* if it is news (higher clock)."""
        lease = self._objects.setdefault((obj, iqs_node), _ObjectLease())
        if lc > lease.lc:
            lease.lc = lc
            lease.valid = False

    def apply_renewal(
        self,
        iqs_node: str,
        obj: str,
        epoch: int,
        lc: LogicalClock,
        expires: float = float("inf"),
    ) -> bool:
        """Record an object renewal reply; returns True if it validated.

        Follows the paper's ``processRenewReply``: the epoch merges with
        MAX; the object becomes valid only if no *newer* invalidation
        from the same server has already been seen (``lc`` must be at
        least the recorded clock).  *expires* carries the holder-side
        finite-object-lease expiry (``+inf`` for the paper's simplifying
        infinite callbacks).
        """
        lease = self._objects.setdefault((obj, iqs_node), _ObjectLease())
        lease.epoch = max(lease.epoch, epoch)
        if lease.lc <= lc:
            lease.lc = lc
            lease.valid = True
            lease.expires = expires
            return True
        return False

    def object_state(self, obj: str, iqs_node: str) -> Tuple[int, LogicalClock, bool]:
        lease = self._objects.get((obj, iqs_node), _ObjectLease())
        return (lease.epoch, lease.lc, lease.valid)

    def object_valid(self, volume: str, obj: str, iqs_node: str, now: float) -> bool:
        """The paper's full validity condition for (obj, i): valid volume
        lease ∧ matching epoch ∧ last event was an update ∧ (when object
        leases are finite) the object lease itself is unexpired."""
        if not self.volume_valid(volume, iqs_node, now):
            return False
        lease = self._objects.get((obj, iqs_node))
        if lease is None:
            return False
        return (
            lease.valid
            and lease.epoch == self.volume_epoch(volume, iqs_node)
            and lease.expires > now
        )

    def valid_servers(self, volume: str, obj: str, iqs_nodes: Iterable[str], now: float) -> List[str]:
        """IQS nodes from which (volume, obj) is currently fully valid."""
        return [i for i in iqs_nodes if self.object_valid(volume, obj, i, now)]

    def object_clock(self, obj: str, iqs_node: str) -> LogicalClock:
        lease = self._objects.get((obj, iqs_node))
        return lease.lc if lease is not None else ZERO_LC

    def best_valid_clock(self, volume: str, obj: str, iqs_nodes: Iterable[str], now: float) -> LogicalClock:
        """``MAX`` of clocks over servers whose lease for *obj* is valid."""
        best = ZERO_LC
        for i in iqs_nodes:
            if self.object_valid(volume, obj, i, now):
                best = max(best, self.object_clock(obj, i))
        return best
