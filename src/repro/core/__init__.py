"""The paper's primary contribution: dual-quorum replication.

* :mod:`~repro.core.basic_dq` — the lease-free protocol of Section 3.1;
* :mod:`~repro.core.dqvl` — dual quorum with volume leases (Section 3.2);
* :mod:`~repro.core.leases` — volume-lease/epoch/delayed-invalidation
  state machines;
* :mod:`~repro.core.volumes` — object → volume assignment;
* :mod:`~repro.core.cluster` — one-call deployment builders.
"""

from .atomic import DqvlAtomicClient
from .basic_dq import BasicIqsNode, BasicOqsNode, DualQuorumClient
from .cluster import DqvlCluster, build_basic_dq_cluster, build_dqvl_cluster
from .config import DqvlConfig
from .dqvl import DqvlClient, DqvlIqsNode, DqvlOqsNode
from .leases import (
    AdaptiveObjectLeasePolicy,
    DelayedInval,
    IqsLeaseTable,
    ObjectLeaseTable,
    OqsLeaseView,
    VolumeLeaseGrant,
)
from .volumes import ExplicitVolumeMap, HashVolumeMap, SingleVolumeMap, VolumeMap

__all__ = [
    "DqvlConfig",
    "DqvlAtomicClient",
    "DqvlIqsNode",
    "DqvlOqsNode",
    "DqvlClient",
    "BasicIqsNode",
    "BasicOqsNode",
    "DualQuorumClient",
    "DqvlCluster",
    "build_dqvl_cluster",
    "build_basic_dq_cluster",
    "IqsLeaseTable",
    "ObjectLeaseTable",
    "AdaptiveObjectLeasePolicy",
    "OqsLeaseView",
    "DelayedInval",
    "VolumeLeaseGrant",
    "VolumeMap",
    "HashVolumeMap",
    "ExplicitVolumeMap",
    "SingleVolumeMap",
]
