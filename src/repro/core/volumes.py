"""Grouping objects into volumes.

DQVL amortises lease renewals by attaching the *short* lease to a
**volume** — a collection of objects — while per-object state is covered
by long-duration object leases (callbacks).  How objects map to volumes
is a deployment decision; the protocol only needs a stable, agreed-upon
``volume_of(object) -> volume`` function on every node.

:class:`HashVolumeMap` spreads objects over a fixed number of volumes by
a deterministic hash (the default).  :class:`ExplicitVolumeMap` pins
chosen objects to chosen volumes, e.g. "all profile fields of customer
42 live in volume ``cust-42``", which is the natural edge-service layout
(per-customer volumes keep a customer's lease traffic on one renewal
path).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional

__all__ = ["VolumeMap", "HashVolumeMap", "ExplicitVolumeMap", "SingleVolumeMap"]


class VolumeMap:
    """Interface: deterministic object → volume assignment."""

    def volume_of(self, obj: str) -> str:
        raise NotImplementedError


class HashVolumeMap(VolumeMap):
    """Assign objects to ``num_volumes`` buckets by a stable hash.

    Uses md5 rather than ``hash()`` so the mapping is identical across
    processes and runs (Python's string hashing is salted per-process).
    """

    def __init__(self, num_volumes: int, prefix: str = "vol") -> None:
        if num_volumes < 1:
            raise ValueError("num_volumes must be positive")
        self.num_volumes = num_volumes
        self.prefix = prefix

    def volume_of(self, obj: str) -> str:
        digest = hashlib.md5(obj.encode("utf-8")).digest()
        bucket = int.from_bytes(digest[:4], "big") % self.num_volumes
        return f"{self.prefix}{bucket}"

    def volumes(self) -> List[str]:
        """All volume names this map can produce."""
        return [f"{self.prefix}{i}" for i in range(self.num_volumes)]


class ExplicitVolumeMap(VolumeMap):
    """Assign listed objects explicitly; others fall back to a default map."""

    def __init__(
        self,
        assignment: Dict[str, str],
        fallback: Optional[VolumeMap] = None,
    ) -> None:
        self.assignment = dict(assignment)
        self.fallback = fallback or SingleVolumeMap()

    def volume_of(self, obj: str) -> str:
        if obj in self.assignment:
            return self.assignment[obj]
        return self.fallback.volume_of(obj)


class SingleVolumeMap(VolumeMap):
    """Every object in one volume — maximal renewal amortisation, and the
    configuration under which a single volume-lease renewal revalidates
    the whole working set."""

    def __init__(self, name: str = "vol0") -> None:
        self.name = name

    def volume_of(self, obj: str) -> str:
        return self.name
