"""The basic dual-quorum protocol (Section 3.1) — no volume leases.

This is the paper's stepping-stone protocol: reads and writes are
processed by two separate quorum systems (OQS and IQS) synchronised by
per-object invalidations.  It already allows the read and write quorums
to be optimised independently, but because it assumes an asynchronous
system model, **a write can block for an arbitrarily long time**: the
writer must collect invalidation acknowledgements from an OQS write
quorum, and there is no lease to wait out when an OQS node is
unreachable.  DQVL (:mod:`repro.core.dqvl`) fixes exactly this.

Message kinds are shared with DQVL's client-facing surface (``dq_read``,
``dq_write``, ``lc_read``, ``obj_renew``, ``inval``), so the same
:class:`~repro.core.dqvl.DqvlClient` drives both protocols — re-exported
here as :data:`DualQuorumClient`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..quorum.qrpc import READ, QuorumCall
from ..quorum.system import QuorumSystem
from ..sim.clock import DriftingClock
from ..sim.kernel import Simulator, any_of
from ..sim.messages import Message
from ..sim.network import Network
from ..sim.node import Node
from ..sim.trace import NULL_TRACER
from ..types import ZERO_LC, LogicalClock
from .config import DqvlConfig
from .dqvl import DqvlClient

__all__ = ["BasicIqsNode", "BasicOqsNode", "DualQuorumClient"]

#: The client for the basic protocol is identical to the DQVL client:
#: both run QRPC reads on the OQS and two-round quorum writes on the IQS.
DualQuorumClient = DqvlClient


class BasicIqsNode(Node):
    """IQS server of the basic protocol: invalidation without leases."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        oqs_system: QuorumSystem,
        config: Optional[DqvlConfig] = None,
        clock: Optional[DriftingClock] = None,
        tracer=NULL_TRACER,
    ) -> None:
        super().__init__(sim, network, node_id, clock=clock)
        self.oqs = oqs_system
        self.config = config or DqvlConfig()
        self.tracer = tracer
        self.logical_clock = ZERO_LC
        self._values: Dict[str, Any] = {}
        self._last_write_lc: Dict[str, LogicalClock] = {}
        # per-(object, OQS node) lastReadLC; see DqvlIqsNode for why this
        # is tracked per node rather than the paper's global scalar
        self._last_renew_lc: Dict[Tuple[str, str], Optional[LogicalClock]] = {}
        self._last_ack_lc: Dict[Tuple[str, str], LogicalClock] = {}
        self.writes_applied = 0
        self.writes_suppressed = 0
        self.writes_through = 0
        self.invals_sent = 0
        self.renewals_served = 0

    # -- state accessors -----------------------------------------------------

    def last_write_lc(self, obj: str) -> LogicalClock:
        return self._last_write_lc.get(obj, ZERO_LC)

    def last_renew_lc(self, obj: str, oqs_node: str) -> Optional[LogicalClock]:
        return self._last_renew_lc.get((obj, oqs_node))

    def last_read_lc(self, obj: str) -> LogicalClock:
        """The paper's global ``lastReadLC``: max over the per-node values."""
        values = [
            lc for (o, _j), lc in self._last_renew_lc.items()
            if o == obj and lc is not None
        ]
        return max(values, default=ZERO_LC)

    def last_ack_lc(self, obj: str, oqs_node: str) -> LogicalClock:
        return self._last_ack_lc.get((obj, oqs_node), ZERO_LC)

    def value_of(self, obj: str) -> Any:
        return self._values.get(obj)

    # -- handlers ----------------------------------------------------------------

    def on_lc_read(self, msg: Message) -> None:
        self.reply(msg, payload={"lc": self.logical_clock})

    def on_dq_write(self, msg: Message):
        """Apply-if-newer, then ensure invalidation, then acknowledge.

        As in DQVL, the invalidation step runs for every copy of the
        request — acknowledging a retransmitted duplicate early would
        let the client complete the write while caches still serve the
        old version (see :meth:`DqvlIqsNode.on_dq_write`)."""
        obj: str = msg["obj"]
        lc: LogicalClock = msg["lc"]
        fresh = lc > self.last_write_lc(obj)
        if fresh:
            self._values[obj] = msg["value"]
            self._last_write_lc[obj] = lc
            self.logical_clock = self.logical_clock.merge(lc)
            self.writes_applied += 1
        yield from self._ensure_owq_invalid(obj, lc, record_stats=fresh,
                                            parent=msg.span_id)
        self.reply(msg, payload={"obj": obj, "lc": lc})

    def on_obj_renew(self, msg: Message) -> None:
        """Serve the current value; record the callback installation."""
        obj: str = msg["obj"]
        self.renewals_served += 1
        self._last_renew_lc[(obj, msg.src)] = self.last_write_lc(obj)
        self.reply(
            msg,
            payload={
                "obj": obj,
                "value": self._values.get(obj),
                "lc": self.last_write_lc(obj),
            },
        )

    # -- invalidation ---------------------------------------------------------------

    def _record_ack(self, obj: str, oqs_node: str, lc: LogicalClock) -> None:
        key = (obj, oqs_node)
        self._last_ack_lc[key] = max(self._last_ack_lc.get(key, ZERO_LC), lc)

    def _known_invalid(self, obj: str, oqs_node: str, lc: LogicalClock) -> bool:
        """Case (a): j's copy is provably invalid when it acked an
        invalidation covering this write, never renewed the object
        (nothing cached), or acked *strictly* after its last renewal.
        The comparison must be strict: an ack and a later renewal can
        carry the same clock, in which case j has revalidated and must
        be suspected."""
        ack = self.last_ack_lc(obj, oqs_node)
        if ack >= lc:
            return True
        renew = self.last_renew_lc(obj, oqs_node)
        # Note: inferring invalidity from `renew >= lc` would be unsound
        # under message loss — a served renewal reply may never arrive,
        # and only an acknowledgement proves delivery (see DqvlIqsNode).
        return renew is None or ack > renew

    def _ensure_owq_invalid(self, obj: str, lc: LogicalClock,
                            record_stats: bool = True,
                            parent: Optional[int] = None):
        """Block until an OQS write quorum has acknowledged invalidation.

        Unlike DQVL there is no lease to wait out: if too many OQS nodes
        are unreachable this loops forever — the asynchronous model's
        documented weakness.
        """
        interval = self.config.inval_initial_timeout_ms
        ack_event = self.sim.future(name=f"{self.node_id}:ack:{obj}")
        sent_any = False
        obs_tracer = self.obs_tracer
        span = None
        if obs_tracer is not None:
            span = obs_tracer.span("invalidate", category="inval",
                                   node=self.node_id, parent=parent,
                                   key=obj, lc=str(lc))

        def on_inval_reply(future) -> None:
            if future.failed:
                return
            reply: Message = future._value
            self._record_ack(obj, reply.src, reply["lc"])
            if not ack_event.done:
                ack_event.resolve(None)

        while True:
            invalid: Set[str] = {
                j for j in self.oqs.nodes if self._known_invalid(obj, j, lc)
            }
            if self.oqs.is_write_quorum(invalid):
                if record_stats:
                    if sent_any:
                        self.writes_through += 1
                    else:
                        self.writes_suppressed += 1
                if span is not None:
                    span.finish(
                        outcome="through" if sent_any else "suppressed"
                    )
                return
            for j in self.oqs.nodes:
                if j in invalid:
                    continue
                self.invals_sent += 1
                future = self.call(j, "inval", {"obj": obj, "lc": lc},
                                   timeout=interval,
                                   span=span.span_id if span is not None else None)
                future.add_callback(on_inval_reply)
            sent_any = True
            yield any_of(self.sim, [ack_event, self.sim.sleep(interval)])
            if ack_event.done:
                ack_event = self.sim.future(name=f"{self.node_id}:ack:{obj}")
            interval = min(interval * self.config.qrpc_backoff, self.config.qrpc_max_timeout_ms)


class BasicOqsNode(Node):
    """OQS server of the basic protocol: per-(object, IQS-node) validity."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        iqs_system: QuorumSystem,
        config: Optional[DqvlConfig] = None,
        clock: Optional[DriftingClock] = None,
        tracer=NULL_TRACER,
    ) -> None:
        super().__init__(sim, network, node_id, clock=clock)
        self.iqs = iqs_system
        self.config = config or DqvlConfig()
        self.tracer = tracer
        # per (obj, iqs_node): highest clock seen, and whether it was an
        # update (True) or an invalidation (False)
        self._clock_of: Dict[Tuple[str, str], LogicalClock] = {}
        self._valid: Dict[Tuple[str, str], bool] = {}
        self._values: Dict[str, Tuple[Any, LogicalClock]] = {}
        #: optional NodeResilience; attached by the deployment
        self.resilience = None
        self.read_hits = 0
        self.read_misses = 0
        self.renewals_sent = 0
        self.invals_received = 0

    # -- validity -----------------------------------------------------------

    def object_clock(self, obj: str, iqs_node: str) -> LogicalClock:
        return self._clock_of.get((obj, iqs_node), ZERO_LC)

    def is_local_valid(self, obj: str) -> bool:
        """The hit test: a full IQS read quorum of *valid* columns, plus
        the max-clock rule (no column may have seen a newer
        invalidation).

        The paper's Section 3.1 prose checks only the max-clock column;
        that alone is unsound once callbacks are tracked per node: the
        valid columns can shrink below a read quorum (stale renewal
        replies are rejected per column), after which a write quorum can
        exist that avoids every valid column — its members all classify
        this node invalid, suppress their invalidations, and the node
        serves the old value as a hit.  Requiring the valid columns to
        contain a read quorum restores the intersection argument — it is
        exactly DQVL's Condition C without the leases.  (Found by the
        lossy-network fuzz suite; see DESIGN.md §8.)
        """
        valid_servers = {
            i for i in self.iqs.nodes if self._valid.get((obj, i), False)
        }
        if not self.iqs.is_read_quorum(valid_servers):
            return False
        max_seen = max(
            (self.object_clock(obj, i) for i in self.iqs.nodes), default=ZERO_LC
        )
        return any(
            self.object_clock(obj, i) == max_seen for i in valid_servers
        )

    def local_value(self, obj: str) -> Tuple[Any, LogicalClock]:
        return self._values.get(obj, (None, ZERO_LC))

    # -- handlers -------------------------------------------------------------

    def on_dq_read(self, msg: Message):
        obj: str = msg["obj"]
        obs_tracer = self.obs_tracer
        if self.is_local_valid(obj):
            self.read_hits += 1
            if obs_tracer is not None:
                obs_tracer.event("read_hit", span=msg.span_id,
                                 node=self.node_id, key=obj)
            value, lc = self.local_value(obj)
            self.reply(msg, payload={"obj": obj, "value": value, "lc": lc, "hit": True})
            return
        self.read_misses += 1
        if obs_tracer is not None:
            obs_tracer.event("read_miss", span=msg.span_id,
                             node=self.node_id, key=obj)
        yield from self._renew_object(obj, parent=msg.span_id)
        value, lc = self.local_value(obj)
        self.reply(msg, payload={"obj": obj, "value": value, "lc": lc, "hit": False})

    def _renew_object(self, obj: str, parent: Optional[int] = None):
        """Validate by QRPC-renewing from an IQS read quorum.

        Completion requires BOTH a full read quorum of replies and the
        max-clock validity rule.  The quorum requirement is what makes
        the result fresh: any read quorum intersects the write quorum of
        the latest completed write, so at least one reply carries its
        clock.  (Stopping at mere local validity would let a single
        stale replica's reply satisfy the max-clock rule and serve an
        old value — a subtle unsound shortcut.)"""

        obs_tracer = self.obs_tracer
        span = None
        if obs_tracer is not None:
            span = obs_tracer.span("validate", category="lease",
                                   node=self.node_id, parent=parent, key=obj)

        def request_for(target: str):
            self.renewals_sent += 1
            return ("obj_renew", {"obj": obj})

        call = QuorumCall(
            self,
            self.iqs,
            READ,
            request_for=request_for,
            done=lambda replies: (
                self.iqs.is_read_quorum(set(replies)) and self.is_local_valid(obj)
            ),
            initial_timeout_ms=self.config.qrpc_initial_timeout_ms,
            backoff=self.config.qrpc_backoff,
            max_timeout_ms=self.config.qrpc_max_timeout_ms,
            max_attempts=self.config.client_max_attempts,
            span=span,
            resilience=self.resilience,
        )
        original_handler = call._make_reply_handler

        def handler_factory(target: str):
            inner = original_handler(target)

            def handle(future) -> None:
                if not future.failed:
                    self._apply_renewal_reply(future._value)
                inner(future)

            return handle

        call._make_reply_handler = handler_factory  # type: ignore[method-assign]
        try:
            yield from call.run()
        except Exception:
            if span is not None:
                span.finish(status="failed")
            raise
        else:
            if span is not None:
                span.finish(status="ok")

    def _apply_renewal_reply(self, reply: Message) -> None:
        """Apply an object renewal: newer-or-equal clocks validate."""
        obj = reply["obj"]
        lc: LogicalClock = reply["lc"]
        key = (obj, reply.src)
        if lc >= self._clock_of.get(key, ZERO_LC):
            self._clock_of[key] = lc
            self._valid[key] = True
            max_seen = max(
                (self.object_clock(obj, i) for i in self.iqs.nodes), default=ZERO_LC
            )
            if lc >= max_seen:
                self._values[obj] = (reply["value"], lc)

    def on_inval(self, msg: Message) -> None:
        self.invals_received += 1
        obj = msg["obj"]
        lc: LogicalClock = msg["lc"]
        key = (obj, msg.src)
        if lc > self._clock_of.get(key, ZERO_LC):
            self._clock_of[key] = lc
            self._valid[key] = False
        self.reply(msg, payload={"obj": obj, "lc": lc})
