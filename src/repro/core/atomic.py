"""Atomic (linearizable) reads for DQVL — the paper's future work.

Section 6: "We are also interested in modifying DQVL to provide
different consistency semantics (e.g. atomic semantics [16]) and
comparing the cost difference."  This module implements the standard
upgrade and makes the cost measurable.

Why regular DQVL is not atomic
------------------------------
Regularity allows *new-old inversions*: while a write is in flight, one
read may return the new value and a later read the old one (two OQS
read quorums need not intersect, so the second reader can be oblivious
to what the first one saw).

The fix (ABD-style write-back)
------------------------------
:class:`DqvlAtomicClient` completes every read with a **write-back
phase**: the value/clock the read selected is re-issued as a write to an
IQS write quorum.  Re-issuing is safe — the write path is idempotent on
(value, clock) — and after it completes, an OQS write quorum can no
longer serve anything older, so every subsequent read returns at least
that clock.  First-reader-wins then forces a single serialization point
per write: no inversions.

The cost — the answer to the paper's question — is that every read pays
the two-round quorum write path on top of its (possibly local) read:
the A6 ablation benchmark quantifies it.
"""

from __future__ import annotations

from typing import Any, Optional

from ..quorum.qrpc import WRITE, qrpc
from ..types import ZERO_LC, ReadResult
from .dqvl import DqvlClient

__all__ = ["DqvlAtomicClient"]


class DqvlAtomicClient(DqvlClient):
    """A DQVL service client whose reads are atomic (linearizable).

    Reads perform the regular DQVL read, then write back the selected
    (value, clock) to an IQS write quorum before returning.  Writes are
    unchanged (the regular write path already serializes writes by
    logical clock).

    ``write_back`` controls the policy:

    * ``"always"`` (default) — atomic semantics;
    * ``"never"`` — degenerates to the regular client (useful for
      like-for-like cost comparisons in one deployment).
    """

    def __init__(self, *args, write_back: str = "always", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if write_back not in ("always", "never"):
            raise ValueError("write_back must be 'always' or 'never'")
        self.write_back = write_back
        self.write_backs_issued = 0

    def read(self, obj: str):
        result: ReadResult = yield from super().read(obj)
        if self.write_back == "always" and result.lc > ZERO_LC:
            self.write_backs_issued += 1
            yield from qrpc(
                self,
                self.iqs,
                WRITE,
                "dq_write",
                {"obj": obj, "value": result.value, "lc": result.lc},
                **self._qrpc_config(self.prefer_iqs),
            )
        # the read's response time includes the write-back
        result.end_time = self.sim.now
        return result
