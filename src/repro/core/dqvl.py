"""DQVL — dual-quorum replication with volume leases (Sections 3.2-3.3).

Three roles, each a :class:`~repro.sim.node.Node`:

* :class:`DqvlIqsNode` — an Input Quorum System server.  Stores object
  values, orders writes by logical clock, and keeps OQS caches coherent
  by invalidation, delayed invalidation (behind expired volume leases),
  or simply waiting out a volume lease.
* :class:`DqvlOqsNode` — an Output Quorum System server.  Caches objects
  under (volume lease, object lease) pairs and serves reads locally when
  both are valid from a full IQS read quorum (the paper's Condition C);
  otherwise it runs the QRPC variation that renews volumes/objects until
  C holds.
* :class:`DqvlClient` — a service client (the data-access library linked
  into a front-end edge server).  Reads via QRPC on the OQS; writes via
  the two-round quorum write on the IQS (logical-clock read, then write).

Fidelity notes
--------------
The node logic follows the pseudo-code of the paper's Figures 4 and 5,
with the deviations below (each discussed in DESIGN.md / EXPERIMENTS.md):

* **Granter-side drift correction.**  IQS records lease expiry as
  ``now + L * (1 + maxDrift)`` (the paper only states the holder-side
  ``t0 + L * (1 - maxDrift)`` rule, which is insufficient on its own
  when both clocks may drift).
* **"Known invalid" uses ≥.**  An IQS server counts OQS node j invalid
  for object o when ``lastAckLC >= lastReadLC`` (the paper's prose uses
  a strict inequality, under which a freshly booted system would
  invalidate caches that provably hold nothing).
* **Max-clock hit rule.**  An OQS node additionally refuses to serve a
  cached value when it has seen *any* invalidation with a logical clock
  above its best valid one.  This is the validity rule of the basic
  protocol (Section 3.1) carried over; it is strictly conservative
  (turns some hits into misses; never the reverse).
* **OQS write quorums.**  Each IQS server independently invalidates
  *one* OQS write quorum.  When the OQS write quorum is the full OQS
  node set (the paper's recommended read-one configuration, used in all
  evaluation figures) this is airtight; for proper-subset OQS write
  quorums, different IQS servers may invalidate *different* write
  quorums and regularity can be violated — the cluster builder warns in
  that case.  See DESIGN.md §7 for the analysis.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..quorum.qrpc import READ, WRITE, QuorumCall, qrpc
from ..quorum.system import QuorumSystem
from ..sim.clock import DriftingClock
from ..sim.kernel import Simulator, any_of
from ..sim.messages import Message
from ..sim.network import Network
from ..sim.node import Node
from ..sim.trace import NULL_TRACER
from ..types import ZERO_LC, LogicalClock, ReadResult, WriteResult
from .config import DqvlConfig
from .leases import (
    AdaptiveObjectLeasePolicy,
    IqsLeaseTable,
    ObjectLeaseTable,
    OqsLeaseView,
    VolumeLeaseGrant,
)

__all__ = ["DqvlIqsNode", "DqvlOqsNode", "DqvlClient"]


def _encode_delayed(grant: VolumeLeaseGrant) -> List[Tuple[str, LogicalClock]]:
    return [(d.obj, d.lc) for d in grant.delayed]


class DqvlIqsNode(Node):
    """An IQS server: the write-side home of every object (Figure 4)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        oqs_system: QuorumSystem,
        config: DqvlConfig,
        clock: Optional[DriftingClock] = None,
        tracer=NULL_TRACER,
    ) -> None:
        super().__init__(sim, network, node_id, clock=clock)
        self.oqs = oqs_system
        self.config = config
        self.tracer = tracer
        self.logical_clock = ZERO_LC
        self.leases = IqsLeaseTable(
            lease_length_ms=config.lease_length_ms,
            max_drift=config.max_drift,
            max_delayed=config.max_delayed,
        )
        # finite object leases (footnote 4) — None means infinite callbacks
        self.object_leases: Optional[ObjectLeaseTable] = (
            ObjectLeaseTable(max_drift=config.max_drift)
            if config.finite_object_leases
            else None
        )
        self.lease_policy: Optional[AdaptiveObjectLeasePolicy] = (
            AdaptiveObjectLeasePolicy(
                config.object_lease_min_ms, config.object_lease_max_ms
            )
            if config.adaptive_object_leases
            else None
        )
        self._values: Dict[str, Any] = {}
        self._last_write_lc: Dict[str, LogicalClock] = {}
        # lastReadLC, tracked per (object, OQS node): the value of
        # lastWriteLC at the time this node last renewed the object.
        # The paper keeps a single per-object scalar; per-node tracking
        # (the renewal handler knows the requester) is strictly more
        # precise — it avoids invalidating nodes that provably cached
        # nothing, and it disambiguates the ack-vs-renewal equality case.
        self._last_renew_lc: Dict[Tuple[str, str], Optional[LogicalClock]] = {}
        self._last_ack_lc: Dict[Tuple[str, str], LogicalClock] = {}
        # statistics
        self.writes_applied = 0
        self.writes_suppressed = 0
        self.writes_through = 0
        self.invals_sent = 0
        self.delayed_enqueued = 0
        self.renewals_served = 0

    # -- per-object state accessors -----------------------------------------

    def last_write_lc(self, obj: str) -> LogicalClock:
        return self._last_write_lc.get(obj, ZERO_LC)

    def last_renew_lc(self, obj: str, oqs_node: str) -> Optional[LogicalClock]:
        """lastWriteLC at the time of *oqs_node*'s last renewal of *obj*;
        ``None`` when the node never renewed it (nothing cached)."""
        return self._last_renew_lc.get((obj, oqs_node))

    def last_read_lc(self, obj: str) -> LogicalClock:
        """The paper's global ``lastReadLC``: max over the per-node values."""
        values = [
            lc for (o, _j), lc in self._last_renew_lc.items()
            if o == obj and lc is not None
        ]
        return max(values, default=ZERO_LC)

    def last_ack_lc(self, obj: str, oqs_node: str) -> LogicalClock:
        return self._last_ack_lc.get((obj, oqs_node), ZERO_LC)

    def value_of(self, obj: str) -> Any:
        return self._values.get(obj)

    def volume_of(self, obj: str) -> str:
        return self.config.volume_map.volume_of(obj)

    # -- client-facing handlers -------------------------------------------------

    def on_lc_read(self, msg: Message) -> None:
        """processLCReadRequest: return the node's global logical clock."""
        self.reply(msg, payload={"lc": self.logical_clock})

    def on_dq_write(self, msg: Message):
        """processWriteRequest: apply the write, then ensure an OQS write
        quorum cannot read the old version, then acknowledge.

        The invalidation step runs for *every* copy of the request, not
        just the one that applied the value: a retransmitted duplicate
        must not be acknowledged while the original's invalidation is
        still in flight, or the client would count the ack toward its
        write quorum and complete the write while caches can still serve
        the old version.  (The paper's pseudo-code acknowledges stale
        clocks unconditionally; that is unsound under QRPC
        retransmission — see DESIGN.md.)
        """
        obj: str = msg["obj"]
        lc: LogicalClock = msg["lc"]
        fresh = lc > self.last_write_lc(obj)
        if fresh:
            self._values[obj] = msg["value"]
            self._last_write_lc[obj] = lc
            self.logical_clock = self.logical_clock.merge(lc)
            self.writes_applied += 1
            if self.lease_policy is not None:
                self.lease_policy.on_write(obj)
        yield from self._ensure_owq_invalid(
            obj, lc, record_stats=fresh, parent=msg.span_id
        )
        self.reply(msg, payload={"obj": obj, "lc": lc})

    # -- OQS-facing handlers -----------------------------------------------------

    def on_vl_renew(self, msg: Message) -> None:
        """processVLRenewal: grant a fresh volume lease, shipping any
        delayed invalidations (kept queued until acknowledged)."""
        volume: str = msg["vol"]
        grant = self.leases.grant(volume, msg.src, self.clock.now(), msg["t0"])
        self.reply(
            msg,
            payload={
                "vol": volume,
                "L": grant.length_ms,
                "epoch": grant.epoch,
                "delayed": _encode_delayed(grant),
                "t0": grant.requestor_time,
            },
        )

    def on_vl_ack(self, msg: Message) -> None:
        """processVLRenewalAck: clear delayed invalidations the holder has
        now applied; their application also counts as invalidation acks."""
        volume: str = msg["vol"]
        ack_lc: LogicalClock = msg["lc"]
        covered = self.leases.pending_delayed(volume, msg.src)
        self.leases.ack_delayed(volume, msg.src, ack_lc)
        for obj, pending_lc in covered.items():
            if pending_lc <= ack_lc:
                self._record_ack(obj, msg.src, pending_lc)

    def on_obj_renew(self, msg: Message) -> None:
        """processObjRenewal: serve the current value and record that the
        requester (re)installed a callback."""
        obj: str = msg["obj"]
        self.renewals_served += 1
        self._last_renew_lc[(obj, msg.src)] = self.last_write_lc(obj)
        self.reply(
            msg, payload=self._renewal_payload(obj, msg.src, msg.get("t0"))
        )

    def on_vlobj_renew(self, msg: Message) -> None:
        """Combined volume renewal + object renewal (read path case (a))."""
        volume: str = msg["vol"]
        obj: str = msg["obj"]
        grant = self.leases.grant(volume, msg.src, self.clock.now(), msg["t0"])
        self.renewals_served += 1
        self._last_renew_lc[(obj, msg.src)] = self.last_write_lc(obj)
        payload = self._renewal_payload(obj, msg.src, msg["t0"])
        payload.update(
            {
                "vol": volume,
                "L": grant.length_ms,
                "vol_epoch": grant.epoch,
                "delayed": _encode_delayed(grant),
                "t0": grant.requestor_time,
            }
        )
        self.reply(msg, payload=payload)

    def _object_lease_length(self, obj: str) -> float:
        """The object-lease length to grant right now (finite modes)."""
        if self.lease_policy is not None:
            return self.lease_policy.on_renewal(obj, self.clock.now())
        return self.config.object_lease_ms  # type: ignore[return-value]

    def _renewal_payload(
        self, obj: str, oqs_node: str, t0: Optional[float]
    ) -> Dict[str, Any]:
        volume = self.volume_of(obj)
        payload = {
            "obj": obj,
            "value": self._values.get(obj),
            "lc": self.last_write_lc(obj),
            "epoch": self.leases.epoch(volume, oqs_node),
        }
        if self.object_leases is not None:
            length = self._object_lease_length(obj)
            self.object_leases.grant(obj, oqs_node, self.clock.now(), length)
            payload["obj_L"] = length
            payload["obj_t0"] = t0
        return payload

    # -- invalidation machinery ------------------------------------------------------

    def _record_ack(self, obj: str, oqs_node: str, lc: LogicalClock) -> None:
        """processInvalAck: lastAckLC := MAX(lastAckLC, lc)."""
        key = (obj, oqs_node)
        self._last_ack_lc[key] = max(self._last_ack_lc.get(key, ZERO_LC), lc)

    def _classify_oqs_node(
        self, obj: str, volume: str, oqs_node: str, lc: LogicalClock
    ) -> str:
        """How must this write treat OQS node j?  One of:

        - ``"invalid"`` — j provably cannot serve the old version via this
          server's column: it acked an invalidation covering this write
          (``lastAckLC >= lc``); or it never renewed the object from this
          server (nothing cached); or its last ack is *strictly* newer
          than its last renewal (the paper's case (a) with per-node
          ``lastReadLC``; at equality the ack and a subsequent renewal
          carry the same clock, so j may have revalidated and must be
          suspected); or it never held the volume lease at all;
        - ``"expired"`` — j's volume lease has lapsed: queue a delayed
          invalidation and count j invalid (case (b));
        - ``"valid"`` — both leases live: a direct invalidation must be
          delivered, or the volume lease waited out (case (c)).
        """
        ack = self.last_ack_lc(obj, oqs_node)
        if ack >= lc:
            return "invalid"
        if self.object_leases is not None and self.object_leases.is_expired(
            obj, oqs_node, self.clock.now()
        ):
            # Finite object leases: the callback lapsed on its own; j
            # cannot serve the object without renewing it first.  No
            # invalidation, no delayed-queue entry — footnote 4's
            # space/network saving.
            return "invalid"
        renew = self.last_renew_lc(obj, oqs_node)
        if renew is None or ack > renew:
            return "invalid"
        # NOTE: one tempting further rule — "renew >= lc implies j already
        # holds a version at least this new, so count it invalid" — is
        # UNSOUND: serving a renewal only proves the reply was *sent*; if
        # the network drops it, j still caches an older version obtained
        # from other servers.  Only an acknowledgement (ack >= lc above)
        # proves delivery.  (Found by the lossy-network fuzz tests.)
        if self.leases.expiry(volume, oqs_node) == float("-inf"):
            # Never granted the volume: j cannot satisfy Condition C through
            # this server until it renews, at which point it must also renew
            # the object (getting the new value).  No queue entry needed.
            return "invalid"
        if self.leases.is_expired(volume, oqs_node, self.clock.now()):
            return "expired"
        return "valid"

    def _ensure_owq_invalid(self, obj: str, lc: LogicalClock,
                            record_stats: bool = True,
                            parent: Optional[int] = None):
        """The write-side while-loop: block until an OQS *write quorum*
        cannot read the old version of *obj* (ack / delayed / expiry)."""
        volume = self.volume_of(obj)
        interval = self.config.inval_initial_timeout_ms
        ack_event = self.sim.future(name=f"{self.node_id}:ack:{obj}")
        sent_any = False
        obs_tracer = self.obs_tracer
        span = None
        if obs_tracer is not None:
            # Parented on the dq_write request: the causal tree shows
            # which write's invalidations blocked which caches.
            span = obs_tracer.span("invalidate", category="inval",
                                   node=self.node_id, parent=parent,
                                   key=obj, lc=str(lc))

        def on_inval_reply(future) -> None:
            if future.failed:
                return
            reply: Message = future._value
            self._record_ack(obj, reply.src, reply["lc"])
            if not ack_event.done:
                ack_event.resolve(None)

        while True:
            invalid: Set[str] = set()
            awaiting: List[str] = []
            next_expiry = float("inf")
            for j in self.oqs.nodes:
                status = self._classify_oqs_node(obj, volume, j, lc)
                if status == "invalid":
                    invalid.add(j)
                elif status == "expired":
                    if not self.leases.has_delayed(volume, j, obj, lc):
                        self.leases.enqueue_delayed(volume, j, obj, lc)
                        self.delayed_enqueued += 1
                    invalid.add(j)
                else:
                    awaiting.append(j)
                    next_expiry = min(next_expiry, self.leases.expiry(volume, j))

            if self.oqs.is_write_quorum(invalid):
                if record_stats:
                    if sent_any:
                        self.writes_through += 1
                    else:
                        self.writes_suppressed += 1
                    self.tracer.emit(
                        self.node_id,
                        "write_through" if sent_any else "write_suppress",
                        obj=obj,
                        lc=str(lc),
                    )
                if span is not None:
                    span.finish(
                        outcome="through" if sent_any else "suppressed"
                    )
                return

            # Invalidate the still-valid holders; retransmission happens by
            # falling through this loop again after `interval`.
            for j in awaiting:
                self.send_inval(j, obj, lc, interval, on_inval_reply,
                                span=span.span_id if span is not None else None)
            sent_any = True

            # Wake on the first ack, or when the earliest relevant volume
            # lease expires (then the expired branch above finishes the
            # write), or at the retransmission interval.
            wait = interval
            if next_expiry < float("inf"):
                # A small epsilon past the granter-side expiry instant so
                # is_expired's strict comparison observes the lapse.
                wait = min(wait, max(next_expiry - self.clock.now(), 0.0) + 0.001)
            yield any_of(self.sim, [ack_event, self.sim.sleep(wait)])
            if ack_event.done:
                ack_event = self.sim.future(name=f"{self.node_id}:ack:{obj}")
            interval = min(interval * self.config.qrpc_backoff, self.config.qrpc_max_timeout_ms)

    def send_inval(self, oqs_node: str, obj: str, lc: LogicalClock,
                   timeout: float, on_reply,
                   span: Optional[int] = None) -> None:
        """Send one object invalidation and register the ack handler."""
        self.invals_sent += 1
        future = self.call(
            oqs_node,
            "inval",
            {"obj": obj, "lc": lc, "vol": self.volume_of(obj)},
            timeout=timeout,
            span=span,
        )
        future.add_callback(on_reply)

    # -- maintenance -----------------------------------------------------------

    def live_callback_count(self) -> int:
        """Number of (object, OQS node) callbacks this server must still
        honour — i.e. entries a write would have to invalidate or wait
        out.  With infinite callbacks this only shrinks via acks; finite
        object leases let it decay on its own, which is the state saving
        of the paper's footnote 4."""
        now = self.clock.now()
        count = 0
        for (obj, node), renew in self._last_renew_lc.items():
            if renew is None:
                continue
            if self.last_ack_lc(obj, node) > renew:
                continue
            if self.object_leases is not None and self.object_leases.is_expired(
                obj, node, now
            ):
                continue
            count += 1
        return count

    def gc_volume(self, volume: str, oqs_node: str) -> None:
        """Operator/GC entry point: advance the epoch for (volume, node),
        dropping its delayed-invalidation queue (Section 3.2)."""
        self.leases.bump_epoch(volume, oqs_node)


class DqvlOqsNode(Node):
    """An OQS server: the read-side cache of every object (Figure 5)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        iqs_system: QuorumSystem,
        config: DqvlConfig,
        clock: Optional[DriftingClock] = None,
        tracer=NULL_TRACER,
    ) -> None:
        super().__init__(sim, network, node_id, clock=clock)
        self.iqs = iqs_system
        self.config = config
        self.tracer = tracer
        self.view = OqsLeaseView(max_drift=config.max_drift)
        self._values: Dict[str, Tuple[Any, LogicalClock]] = {}
        self._volume_interest: Dict[str, float] = {}
        self._keeper_running: Set[str] = set()
        #: in-flight validation per object (single-flight coalescing)
        self._validating: Dict[str, Any] = {}
        #: optional NodeResilience (adaptive timeouts, hedging, suspect
        #: avoidance, post-crash catch-up); attached by the deployment
        self.resilience = None
        #: while True, cached values are never served as hits: the
        #: post-crash catch-up is revalidating them against the IQS
        self._catching_up = False
        # statistics
        self.read_hits = 0
        self.read_misses = 0
        self.renewals_sent = 0
        self.invals_received = 0
        self.validations_coalesced = 0
        self.catchups_started = 0

    # -- local validity ------------------------------------------------------------

    def volume_of(self, obj: str) -> str:
        return self.config.volume_map.volume_of(obj)

    def is_local_valid(self, obj: str) -> bool:
        """The hit test: Condition C (a fully valid IQS read quorum) plus
        the basic protocol's max-clock rule (no newer invalidation seen)."""
        volume = self.volume_of(obj)
        now = self.clock.now()
        valid_servers = set(self.view.valid_servers(volume, obj, self.iqs.nodes, now))
        if not self.iqs.is_read_quorum(valid_servers):
            return False
        best_valid = self.view.best_valid_clock(volume, obj, self.iqs.nodes, now)
        max_seen = max(
            (self.view.object_clock(obj, i) for i in self.iqs.nodes), default=ZERO_LC
        )
        return best_valid >= max_seen

    def local_value(self, obj: str) -> Tuple[Any, LogicalClock]:
        return self._values.get(obj, (None, ZERO_LC))

    # -- client-facing read -------------------------------------------------------------

    def on_dq_read(self, msg: Message):
        """processReadRequest: serve locally when valid, else run the
        renewal variation of QRPC until Condition C holds."""
        obj: str = msg["obj"]
        obs_tracer = self.obs_tracer
        self._note_interest(obj)
        if not self._catching_up and self.is_local_valid(obj):
            self.read_hits += 1
            value, lc = self.local_value(obj)
            self.tracer.emit(self.node_id, "read_hit", obj=obj, lc=str(lc))
            if obs_tracer is not None:
                obs_tracer.event("read_hit", span=msg.span_id,
                                 node=self.node_id, key=obj)
            self.reply(msg, payload={"obj": obj, "value": value, "lc": lc, "hit": True})
            return
        self.read_misses += 1
        self.tracer.emit(self.node_id, "read_miss", obj=obj)
        if obs_tracer is not None:
            obs_tracer.event("read_miss", span=msg.span_id,
                             node=self.node_id, key=obj)
        yield from self.ensure_validated(obj, parent=msg.span_id)
        value, lc = self.local_value(obj)
        self.reply(msg, payload={"obj": obj, "value": value, "lc": lc, "hit": False})

    def ensure_validated(self, obj: str, parent: Optional[int] = None):
        """Wait until the object is locally valid, coalescing concurrent
        validations: a read storm hitting a just-invalidated object must
        produce ONE renewal exchange, not one per reader (the classic
        thundering-herd guard).  Loops because validity can be broken
        again (by a new invalidation) between a joined validation's
        completion and this reader's turn."""
        while not self.is_local_valid(obj):
            inflight = self._validating.get(obj)
            if inflight is None or inflight.done:
                def runner(obj=obj, parent=parent):
                    try:
                        yield from self.validate_local(obj, parent=parent)
                    finally:
                        self._validating.pop(obj, None)

                inflight = self.spawn(
                    runner(), name=f"{self.node_id}:validate:{obj}"
                )
                self._validating[obj] = inflight
            else:
                self.validations_coalesced += 1
            yield inflight

    def validate_local(self, obj: str, parent: Optional[int] = None):
        """The paper's QRPC variation: per-target renewal requests (volume,
        object, or both) repeated until Condition C becomes true.

        Quorum selection is *sticky*: targets are biased toward IQS
        servers whose volume lease this node already holds, so one
        volume-lease renewal keeps amortising over all the volume's
        objects instead of spreading leases across random quorums.
        """
        volume = self.volume_of(obj)
        obs_tracer = self.obs_tracer
        span = None
        if obs_tracer is not None:
            # Parented on the read that missed (coalesced readers attach
            # to the first miss's validation).
            span = obs_tracer.span("validate", category="lease",
                                   node=self.node_id, parent=parent,
                                   key=obj, vol=volume)

        def sticky_targets():
            now = self.clock.now()
            held = {
                i for i in self.iqs.nodes if self.view.volume_valid(volume, i, now)
            }
            return self.iqs.sample_read_quorum_biased(self.sim.rng, held)

        def request_for(target: str):
            now = self.clock.now()
            vol_ok = self.view.volume_valid(volume, target, now)
            obj_ok = self.view.object_valid(volume, obj, target, now)
            if vol_ok and obj_ok:
                return None
            self.renewals_sent += 1
            if not vol_ok and not obj_ok:
                return ("vlobj_renew", {"vol": volume, "obj": obj, "t0": now})
            if not vol_ok:
                return ("vl_renew", {"vol": volume, "t0": now})
            return ("obj_renew", {"obj": obj, "t0": now})

        call = QuorumCall(
            self,
            self.iqs,
            READ,
            request_for=request_for,
            done=lambda _replies: self.is_local_valid(obj),
            initial_timeout_ms=self.config.qrpc_initial_timeout_ms,
            backoff=self.config.qrpc_backoff,
            max_timeout_ms=self.config.qrpc_max_timeout_ms,
            max_attempts=self.config.client_max_attempts,
            sample_targets=sticky_targets,
            span=span,
            resilience=self.resilience,
        )
        # Renewal replies mutate node state; QuorumCall only gathers the
        # messages, so interpose handlers through the reply payloads.
        original_handler = call._make_reply_handler

        def handler_factory(target: str):
            inner = original_handler(target)

            def handle(future) -> None:
                if not future.failed:
                    self._apply_renewal_reply(future._value)
                inner(future)

            return handle

        call._make_reply_handler = handler_factory  # type: ignore[method-assign]
        try:
            yield from call.run()
        except Exception:
            if span is not None:
                span.finish(status="failed")
            raise
        if span is not None:
            span.finish(status="ok")

    def _apply_renewal_reply(self, reply: Message) -> None:
        """Dispatch a renewal reply to the lease view (vl / obj / both)."""
        server = reply.src
        if "L" in reply.payload:  # volume grant present
            grant = VolumeLeaseGrant(
                volume=reply["vol"],
                length_ms=reply["L"],
                epoch=reply.get("vol_epoch", reply.get("epoch", 0)),
                delayed=tuple(),
                requestor_time=reply["t0"],
            )
            self.view.apply_grant(server, grant)
            applied_max = ZERO_LC
            for obj, lc in reply.get("delayed", []):
                self.view.apply_invalidation(server, obj, lc)
                applied_max = max(applied_max, lc)
                self.invals_received += 1
            if reply.get("delayed"):
                self.send(server, "vl_ack", {"vol": reply["vol"], "lc": applied_max})
        if "obj" in reply.payload:  # object renewal present
            obj = reply["obj"]
            if "obj_L" in reply.payload and reply.get("obj_t0") is not None:
                # finite object lease: holder-side conservative expiry
                obj_expires = reply["obj_t0"] + reply["obj_L"] * (
                    1.0 - self.config.max_drift
                )
            else:
                obj_expires = float("inf")
            became_valid = self.view.apply_renewal(
                server, obj, reply["epoch"], reply["lc"], expires=obj_expires
            )
            if became_valid:
                max_seen = max(
                    (self.view.object_clock(obj, i) for i in self.iqs.nodes),
                    default=ZERO_LC,
                )
                if reply["lc"] >= max_seen:
                    self._values[obj] = (reply["value"], reply["lc"])

    # -- recovery ---------------------------------------------------------------------------

    def on_recover(self) -> None:
        """With ``volatile_oqs_recovery``, a restart loses the cache and
        every lease; the node rebuilds by missing and revalidating.
        Losing state is always safe — the protocol's hazard is serving
        *stale* data, never serving none.

        With resilience attached (and durable state), recovery also runs
        an anti-entropy catch-up: every cached object is revalidated
        against an IQS read quorum — pulling the invalidations and
        delayed-invalidation queues that could not be delivered while
        the node was down — before the cache may serve hits again.
        """
        self._validating.clear()
        if self.config.volatile_oqs_recovery:
            self.view = OqsLeaseView(max_drift=self.config.max_drift)
            self._values.clear()
            self._volume_interest.clear()
            self._keeper_running.clear()
            return
        res = self.resilience
        if res is not None and res.config.catchup and self._values:
            self._catching_up = True
            self.catchups_started += 1
            self.tracer.emit(self.node_id, "catchup_start",
                             objects=len(self._values))
            self.spawn(self._catch_up(), name=f"{self.node_id}:catchup")

    def _catch_up(self):
        """Post-crash anti-entropy resync: revalidate every cached object
        from an IQS read quorum before local hits resume.

        The ``_catching_up`` flag turns every read into a miss meanwhile
        (each miss revalidates its own object on demand, so reads stay
        correct *and* live during the sweep — they just pay the renewal
        round trip).  Retries survive quorum outages; a second crash
        abandons the sweep, and the next recovery starts a fresh one.
        """
        epoch = self._crash_count
        retry = self.resilience.config.catchup_retry_ms
        try:
            for obj in sorted(self._values):
                while self.alive and self._crash_count == epoch:
                    try:
                        yield from self.ensure_validated(obj)
                        break
                    except Exception:
                        # Quorum unreachable (QrpcError or a crashed IQS
                        # majority): back off and retry the same object.
                        yield self.sim.sleep(retry)
                if self._crash_count != epoch:
                    return
        finally:
            if self._crash_count == epoch:
                self._catching_up = False
                self.tracer.emit(self.node_id, "catchup_done")

    # -- IQS-facing handlers ----------------------------------------------------------------

    def on_inval(self, msg: Message) -> None:
        """processInval: record the invalidation if news; always ack."""
        self.invals_received += 1
        self.view.apply_invalidation(msg.src, msg["obj"], msg["lc"])
        self.reply(msg, payload={"obj": msg["obj"], "lc": msg["lc"]})

    # -- proactive volume renewal -----------------------------------------------------------

    def _note_interest(self, obj: str) -> None:
        if not self.config.proactive_renewal:
            return
        volume = self.volume_of(obj)
        self._volume_interest[volume] = self.clock.now()
        if volume not in self._keeper_running:
            self._keeper_running.add(volume)
            self.spawn(self._volume_keeper(volume), name=f"{self.node_id}:keeper:{volume}")

    def _volume_keeper(self, volume: str):
        """Background renewal loop: while the volume has recent read
        interest, renew its lease `renewal_margin_ms` before expiry from a
        full IQS read quorum."""
        margin = self.config.renewal_margin_ms
        while True:
            now = self.clock.now()
            interest = self._volume_interest.get(volume, float("-inf"))
            if now - interest > self.config.interest_window_ms:
                break  # cold volume: let the lease lapse
            # Earliest expiry across the read quorum we want to keep valid.
            deadline = min(
                (self.view.volume_expiry(volume, i) for i in self.iqs.nodes),
                default=float("-inf"),
            )
            if deadline - now <= margin:
                yield from self._renew_volume_quorum(volume)
            else:
                yield self.sim.sleep(max(deadline - now - margin, 1.0))
                continue
            now = self.clock.now()
            deadline = min(
                (self.view.volume_expiry(volume, i) for i in self.iqs.nodes),
                default=now,
            )
            yield self.sim.sleep(max(deadline - now - margin, 1.0))
        self._keeper_exited(volume)

    def _keeper_exited(self, volume: str) -> None:
        """Bookkeeping + trace event when a renewal keeper loop returns.

        The ``warm`` flag tells liveness oracles whether the volume still
        had recent read interest at exit time: a healthy keeper only ever
        exits *cold* (interest window elapsed), so a warm exit is a
        keeper that abandoned a volume it was still responsible for.
        """
        self._keeper_running.discard(volume)
        now = self.clock.now()
        interest = self._volume_interest.get(volume, float("-inf"))
        warm = now - interest <= self.config.interest_window_ms
        self.tracer.emit(self.node_id, "keeper_exit", vol=volume, warm=warm)

    def _renew_volume_quorum(self, volume: str):
        """Renew the volume lease from every member of an IQS read quorum
        whose grant is stale (used by the keeper, off the read path).
        Sticky toward the currently held servers."""
        def sticky_targets():
            now = self.clock.now()
            held = {
                i for i in self.iqs.nodes if self.view.volume_valid(volume, i, now)
            }
            return self.iqs.sample_read_quorum_biased(self.sim.rng, held)

        def request_for(target: str):
            now = self.clock.now()
            if self.view.volume_valid(volume, target, now) and (
                self.view.volume_expiry(volume, target) - now
                > self.config.renewal_margin_ms
            ):
                return None
            self.renewals_sent += 1
            return ("vl_renew", {"vol": volume, "t0": now})

        def done(_replies) -> bool:
            now = self.clock.now()
            fresh = {
                i
                for i in self.iqs.nodes
                if self.view.volume_valid(volume, i, now)
                and self.view.volume_expiry(volume, i) - now
                > self.config.renewal_margin_ms
            }
            return self.iqs.is_read_quorum(fresh)

        obs_tracer = self.obs_tracer
        span = None
        if obs_tracer is not None and not done(None):
            # Only trace renewals that will actually send something: the
            # keeper polls often and QuorumCall returns vacuously when a
            # fresh read quorum is already held.
            span = obs_tracer.span("renew_volume", category="lease",
                                   node=self.node_id, vol=volume)

        call = QuorumCall(
            self,
            self.iqs,
            READ,
            request_for=request_for,
            done=done,
            initial_timeout_ms=self.config.qrpc_initial_timeout_ms,
            backoff=self.config.qrpc_backoff,
            max_timeout_ms=self.config.qrpc_max_timeout_ms,
            max_attempts=3,
            sample_targets=sticky_targets,
            span=span,
            resilience=self.resilience,
        )
        original_handler = call._make_reply_handler

        def handler_factory(target: str):
            inner = original_handler(target)

            def handle(future) -> None:
                if not future.failed:
                    self._apply_renewal_reply(future._value)
                inner(future)

            return handle

        call._make_reply_handler = handler_factory  # type: ignore[method-assign]
        try:
            yield from call.run()
        except Exception:
            # Keeper renewals are best-effort; the read path renews on
            # demand if the keeper could not reach a quorum.
            if span is not None:
                span.finish(status="failed")
        else:
            if span is not None:
                span.finish(status="ok")


class DqvlClient(Node):
    """A service client: the front-end edge server's access library."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        iqs_system: QuorumSystem,
        oqs_system: QuorumSystem,
        config: DqvlConfig,
        clock: Optional[DriftingClock] = None,
        tracer=NULL_TRACER,
        prefer_oqs: Optional[str] = None,
        prefer_iqs: Optional[str] = None,
    ) -> None:
        super().__init__(sim, network, node_id, clock=clock)
        self.iqs = iqs_system
        self.oqs = oqs_system
        self.config = config
        self.tracer = tracer
        #: Replica to include in every sampled OQS read quorum — the
        #: front end's co-located (or nearest) edge replica.
        self.prefer_oqs = prefer_oqs
        self.prefer_iqs = prefer_iqs
        #: optional NodeResilience; attached by the deployment
        self.resilience = None
        self._lc_seen = ZERO_LC

    def _qrpc_config(self, prefer: Optional[str]) -> Dict[str, Any]:
        return {
            "initial_timeout_ms": self.config.qrpc_initial_timeout_ms,
            "backoff": self.config.qrpc_backoff,
            "max_timeout_ms": self.config.qrpc_max_timeout_ms,
            "max_attempts": self.config.client_max_attempts,
            "prefer": prefer,
            "resilience": self.resilience,
        }

    def read(self, obj: str, parent=None):
        """Client read: QRPC(OQS, READ); return the highest-clock reply."""
        start = self.sim.now
        tracer = self.obs_tracer
        span = None
        if tracer is not None:
            span = tracer.span("read", category="op", node=self.node_id,
                               key=obj, parent=parent)
        try:
            replies = yield from qrpc(
                self, self.oqs, READ, "dq_read", {"obj": obj},
                span=span, **self._qrpc_config(self.prefer_oqs),
            )
        except Exception:
            if span is not None:
                span.finish(status="rejected")
            raise
        best: Optional[Message] = None
        for reply in replies.values():
            if best is None or reply["lc"] > best["lc"]:
                best = reply
        assert best is not None
        if span is not None:
            span.finish(status="ok", hit=best.get("hit"), server=best.src)
        return ReadResult(
            key=obj,
            value=best["value"],
            lc=best["lc"],
            start_time=start,
            end_time=self.sim.now,
            client=self.node_id,
            server=best.src,
            hit=best.get("hit"),
        )

    def write(self, obj: str, value: Any, parent=None):
        """Client write: read the highest logical clock from an IQS read
        quorum, advance it, and write to an IQS write quorum."""
        start = self.sim.now
        tracer = self.obs_tracer
        span = None
        if tracer is not None:
            span = tracer.span("write", category="op", node=self.node_id,
                               key=obj, parent=parent)
        try:
            replies = yield from qrpc(
                self, self.iqs, READ, "lc_read", {},
                span=span, **self._qrpc_config(self.prefer_iqs),
            )
            highest = max((r["lc"] for r in replies.values()), default=ZERO_LC)
            highest = max(highest, self._lc_seen)
            lc = highest.next(self.node_id)
            self._lc_seen = lc
            yield from qrpc(
                self,
                self.iqs,
                WRITE,
                "dq_write",
                {"obj": obj, "value": value, "lc": lc},
                span=span,
                **self._qrpc_config(self.prefer_iqs),
            )
        except Exception:
            if span is not None:
                span.finish(status="rejected")
            raise
        if span is not None:
            span.finish(status="ok", lc=str(lc))
        return WriteResult(
            key=obj,
            value=value,
            lc=lc,
            start_time=start,
            end_time=self.sim.now,
            client=self.node_id,
        )
