"""Configuration for the dual-quorum protocols."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..quorum.spec import QuorumSpec
from .volumes import SingleVolumeMap, VolumeMap

__all__ = ["DqvlConfig"]


@dataclass
class DqvlConfig:
    """Tunables for a DQVL deployment.

    Attributes
    ----------
    lease_length_ms:
        Nominal volume lease length ``L``.  The paper's central trade-off:
        short leases bound how long a write can be blocked by an
        unreachable OQS node (the write may simply wait out the lease);
        long leases reduce renewal traffic on the read path.
    max_drift:
        Clock drift bound ``maxDrift`` assumed by the lease arithmetic.
    max_delayed:
        Per-(volume, node) bound on the delayed-invalidation queue; beyond
        it the epoch advances and the queue is dropped (Section 3.2).
    volume_map:
        Object → volume assignment shared by every node; defaults to a
        single volume (maximal renewal amortisation).
    qrpc_initial_timeout_ms / qrpc_backoff / qrpc_max_timeout_ms:
        Retransmission schedule for all QRPC interactions, per the
        paper's prototype (fresh random quorum per attempt, exponential
        interval).
    client_max_attempts:
        Attempt budget for client-facing QRPCs; ``None`` blocks forever
        (the asynchronous model).  Availability experiments set a finite
        budget so unreachable quorums surface as rejections.
    inval_initial_timeout_ms:
        First retransmission interval for IQS→OQS invalidations.
    proactive_renewal:
        When True, OQS nodes renew volume leases shortly before expiry
        for volumes with recent read interest, keeping renewals off the
        read critical path (the paper's amortisation argument).
    renewal_margin_ms:
        How long before expiry a proactive renewal is issued.
    interest_window_ms:
        How long after the last read of a volume proactive renewal keeps
        going; beyond it the volume lease is allowed to lapse.
    """

    lease_length_ms: float = 10_000.0
    max_drift: float = 0.0
    max_delayed: int = 1000
    #: finite object-lease length; ``None`` = infinite callbacks (the
    #: paper's simplifying assumption, footnote 4)
    object_lease_ms: Optional[float] = None
    #: adaptive object-lease lengths (Duvvuri et al., the paper's [9]):
    #: read-hot objects earn longer leases, write-hot ones shorter
    adaptive_object_leases: bool = False
    object_lease_min_ms: float = 2_000.0
    object_lease_max_ms: float = 120_000.0
    volume_map: VolumeMap = field(default_factory=SingleVolumeMap)
    qrpc_initial_timeout_ms: float = 400.0
    qrpc_backoff: float = 2.0
    qrpc_max_timeout_ms: float = 6400.0
    client_max_attempts: Optional[int] = None
    inval_initial_timeout_ms: float = 400.0
    proactive_renewal: bool = False
    renewal_margin_ms: float = 1_000.0
    interest_window_ms: float = 60_000.0
    #: when True, an OQS node that recovers from a crash comes back with
    #: an empty cache and no lease state (a process restart without
    #: stable storage).  Safe either way: an amnesiac cache simply
    #: misses and revalidates; the default (False) models stable storage.
    volatile_oqs_recovery: bool = False
    #: declarative IQS/OQS quorum shapes (spec strings, JSON dicts, or
    #: :class:`~repro.quorum.spec.QuorumSpec` objects are all accepted;
    #: normalised to specs).  ``None`` keeps the paper's defaults:
    #: majority IQS, read-one/write-all OQS.  The cluster builders bind
    #: these to the deployment's node ids via :meth:`QuorumSpec.build`;
    #: an explicitly passed ``iqs_system``/``oqs_system`` still wins.
    iqs_spec: Optional[Union[QuorumSpec, str]] = None
    oqs_spec: Optional[Union[QuorumSpec, str]] = None

    def __post_init__(self) -> None:
        if self.iqs_spec is not None:
            self.iqs_spec = QuorumSpec.parse(self.iqs_spec)
        if self.oqs_spec is not None:
            self.oqs_spec = QuorumSpec.parse(self.oqs_spec)
        if self.lease_length_ms <= 0:
            raise ValueError("lease_length_ms must be positive")
        if not 0.0 <= self.max_drift < 1.0:
            raise ValueError("max_drift must be in [0, 1)")
        if self.renewal_margin_ms >= self.lease_length_ms and self.proactive_renewal:
            raise ValueError("renewal_margin_ms must be below lease_length_ms")
        if self.object_lease_ms is not None and self.object_lease_ms <= 0:
            raise ValueError("object_lease_ms must be positive (or None)")
        if self.adaptive_object_leases and self.object_lease_ms is not None:
            raise ValueError(
                "choose either a fixed object_lease_ms or adaptive leases"
            )
        if not 0 < self.object_lease_min_ms <= self.object_lease_max_ms:
            raise ValueError("need 0 < object_lease_min_ms <= object_lease_max_ms")

    @property
    def finite_object_leases(self) -> bool:
        """True when object leases expire (fixed or adaptive length)."""
        return self.object_lease_ms is not None or self.adaptive_object_leases
